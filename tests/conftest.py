"""Shared fixtures: meshes, parameters, traces and the study object.

Expensive objects (kernel traces, the optimization study) are session-scoped
so the machine-model tests don't re-trace the baseline kernel repeatedly.
"""

import numpy as np
import pytest

from repro.core import UnifiedAssembler
from repro.fem import box_tet_mesh, bolund_like_mesh, perturbed_box_mesh
from repro.physics import AssemblyParams


@pytest.fixture(scope="session")
def small_mesh():
    return box_tet_mesh(3, 3, 3)


@pytest.fixture(scope="session")
def medium_mesh():
    return box_tet_mesh(6, 6, 6)


@pytest.fixture(scope="session")
def jittered_mesh():
    return perturbed_box_mesh(4, 4, 4, amplitude=0.1, seed=3)


@pytest.fixture(scope="session")
def bolund_mesh():
    return bolund_like_mesh(nx=10, ny=8, nz=6)


@pytest.fixture(scope="session")
def params():
    return AssemblyParams(body_force=(0.05, -0.1, 0.2))


@pytest.fixture(scope="session")
def velocity(medium_mesh):
    rng = np.random.default_rng(42)
    return 0.1 * rng.standard_normal((medium_mesh.nnode, 3))


@pytest.fixture(scope="session")
def assembler(medium_mesh, params):
    return UnifiedAssembler(medium_mesh, params, vector_dim=32)


@pytest.fixture(scope="session")
def traces(assembler, velocity):
    """Kernel traces of all five variants (session-cached)."""
    return {
        name: assembler.trace(name, velocity)
        for name in ("B", "P", "RS", "RSP", "RSPR")
    }
