"""Batched multi-scenario assembly: bitwise identity and isolation.

The acceptance criteria of the scenario-batch axis live here:
:meth:`~repro.core.unified.UnifiedAssembler.run_batch` must be
**bitwise identical** per scenario to ``S`` independent serial solves
across variants, vector_dims, executors and velocity ranks (hypothesis
property test); a corrupted scenario must degrade *alone* while the
other ``S - 1`` stay bit-identical on the fast path; and the satellite
plumbing (ScenarioBatch validation, per-``(variant, mode)`` autotune
persistence, per-scenario profiler attribution, BatchCampaign lockstep,
multiprocess sharding) must hold its contracts.
"""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ScenarioBatch,
    UnifiedAssembler,
    autotune_vector_dim,
    variant_names,
)
from repro.fem import box_tet_mesh, get_plan
from repro.obs import TapeProfiler
from repro.obs.metrics import get_registry
from repro.physics import AssemblyParams
from repro.physics.convection import ConvectiveForm
from repro.physics.fractional_step import BatchCampaign, FractionalStepSolver
from repro.resilience.faults import FaultPlan

#: same tolerance the serial profiler acceptance uses -- prediction is
#: an all-vector upper bound, folded scalars cost no arena read
BYTE_RESIDUAL_TOLERANCE = 0.15

THREAD_KWARGS = {"executor": "threads", "num_threads": 2, "chunk_groups": 1}


def forcing_batch(size):
    """Forcing-only batch: the one varying column every variant accepts
    (RS/RSP/RSPR bake density/viscosity/vreman_c into the kernel)."""
    return ScenarioBatch([
        AssemblyParams(body_force=(0.0, 0.0, 0.1 * (s + 1)))
        for s in range(size)
    ])


def material_batch(size):
    """Density/viscosity/forcing all varying -- baseline variants only."""
    return ScenarioBatch([
        AssemblyParams(
            density=1.0 + 0.1 * s,
            viscosity=1e-3 * (s + 1),
            body_force=(0.0, 0.0, 0.01 * (s + 1)),
        )
        for s in range(size)
    ])


def _velocity(mesh, seed):
    rng = np.random.default_rng(seed)
    return 0.1 * rng.standard_normal((mesh.nnode, 3))


def _count(name):
    snap = get_registry().snapshot().get(name)
    return 0.0 if snap is None else float(snap.get("value") or 0.0)


# ---------------------------------------------------------------------------
# Acceptance: run_batch is bitwise identical to S serial solves
# ---------------------------------------------------------------------------


@settings(max_examples=12, deadline=None)
@given(
    variant=st.sampled_from(variant_names()),
    vector_dim=st.integers(min_value=3, max_value=200),
    seed=st.integers(min_value=0, max_value=5),
    mode=st.sampled_from(["compiled", "codegen"]),
    executor=st.sampled_from(["serial", "threads"]),
    velocity_rank=st.sampled_from(["vec", "full"]),
    size=st.sampled_from([2, 4]),
)
def test_run_batch_bitwise_matches_serial(
    variant, vector_dim, seed, mode, executor, velocity_rank, size
):
    """One batched replay == S independent assemblies, bit for bit."""
    # fresh mesh per example: no plan/tape cache bleed between examples
    mesh = box_tet_mesh(3, 3, 3)
    batch = (
        forcing_batch(size)
        if variant in ("RS", "RSP", "RSPR")
        else material_batch(size)
    )
    kwargs = {} if executor == "serial" else dict(THREAD_KWARGS)
    v0 = _velocity(mesh, seed)
    if velocity_rank == "vec":
        velocity = v0
        per_scenario = [v0] * size
    else:
        velocity = np.stack([(1.0 + 0.1 * s) * v0 for s in range(size)])
        per_scenario = [velocity[s] for s in range(size)]

    asm = UnifiedAssembler(
        mesh, batch[0], vector_dim=vector_dim, mode=mode, **kwargs
    )
    rhs = asm.run_batch(variant, batch, velocity)
    assert rhs.shape == (size, mesh.nnode, 3)
    assert asm.last_batch["isolated"] == ()
    for s in range(size):
        serial = UnifiedAssembler(
            mesh, batch[s], vector_dim=vector_dim, mode=mode, **kwargs
        )
        ref = serial.assemble(variant, per_scenario[s])
        assert np.array_equal(rhs[s], ref), (
            f"{variant}/{mode}/{executor}@vd{vector_dim} "
            f"{velocity_rank}: scenario {s} differs"
        )


def test_run_batch_interpreted_is_serial_reference(small_mesh):
    """Interpreted mode runs the reference loop -- same contract."""
    batch = material_batch(3)
    velocity = _velocity(small_mesh, 1)
    asm = UnifiedAssembler(small_mesh, batch[0], vector_dim=16)
    rhs = asm.run_batch("B", batch, velocity)
    for s in range(3):
        ref = UnifiedAssembler(
            small_mesh, batch[s], vector_dim=16
        ).assemble("B", velocity)
        assert np.array_equal(rhs[s], ref)


def test_run_batch_velocity_shape_validation(small_mesh):
    batch = forcing_batch(2)
    asm = UnifiedAssembler(
        small_mesh, batch[0], vector_dim=16, mode="compiled"
    )
    with pytest.raises(ValueError, match="velocity must be"):
        asm.run_batch("B", batch, np.zeros((3, small_mesh.nnode, 3)))
    with pytest.raises(ValueError, match="velocity must be"):
        asm.run_batch("B", batch, np.zeros(small_mesh.nnode))


def test_run_batch_specialization_checked_per_scenario(small_mesh):
    """A specialized variant rejects a batch whose *any* scenario strays
    from the baked constants -- checked before anything records."""
    from repro.core import SpecializationError

    batch = material_batch(3)  # varies density/viscosity
    asm = UnifiedAssembler(
        small_mesh, batch[0], vector_dim=16, mode="compiled"
    )
    with pytest.raises(SpecializationError):
        asm.run_batch("RSP", batch, _velocity(small_mesh, 0))


# ---------------------------------------------------------------------------
# Acceptance: fault isolation -- one scenario degrades alone
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("mode", ["compiled", "codegen"])
def test_fault_isolation_single_scenario(small_mesh, mode):
    """A NaN-ing scenario drops to the resilience ladder alone; the
    other ``S - 1`` results stay bit-identical to a fault-free batch."""
    size, bad = 4, 2
    batch = forcing_batch(size)
    velocity = _velocity(small_mesh, 3)
    clean = UnifiedAssembler(
        small_mesh, batch[0], vector_dim=32, mode=mode
    ).run_batch("B", batch, velocity)

    before = _count("resilience.batch_isolations")
    asm = UnifiedAssembler(
        small_mesh, batch[0], vector_dim=32, mode=mode,
        fault_plan=FaultPlan.single("assembler", "nan", index=bad),
    )
    rhs = asm.run_batch("B", batch, velocity)

    assert asm.last_batch["isolated"] == (bad,)
    assert _count("resilience.batch_isolations") == before + 1
    for s in range(size):
        row = asm.last_batch["per_scenario"][s]
        assert row["isolated"] == (s == bad)
        assert row["finite_on_fast_path"] == (s != bad)
        if s != bad:
            assert np.array_equal(rhs[s], clean[s]), s
    # the isolated scenario re-assembled on the ladder starting at the
    # current mode with the same vector_dim -> same bits as the clean run
    assert np.isfinite(rhs[bad]).all()
    assert np.array_equal(rhs[bad], clean[bad])


# ---------------------------------------------------------------------------
# ScenarioBatch: validation, broadcasting, folding, identity
# ---------------------------------------------------------------------------


def test_scenario_batch_rejects_mixed_flags():
    with pytest.raises(ValueError, match="must be uniform"):
        ScenarioBatch([
            AssemblyParams(),
            AssemblyParams(convective_form=ConvectiveForm.SKEW_SYMMETRIC),
        ])


def test_scenario_batch_rejects_non_params():
    with pytest.raises(TypeError, match="expected AssemblyParams"):
        ScenarioBatch([AssemblyParams(), {"density": 1.0}])
    with pytest.raises(ValueError, match="at least one"):
        ScenarioBatch([])


def test_from_arrays_broadcasting():
    batch = ScenarioBatch.from_arrays(
        viscosity=[1e-3, 2e-3, 3e-3], body_force=(0.0, 0.0, 1.0)
    )
    assert batch.size == 3
    assert batch[1].viscosity == 2e-3
    assert batch[2].body_force == (0.0, 0.0, 1.0)
    assert batch.varying == ("viscosity",)
    assert batch.folded["density"] == 1.0

    per = ScenarioBatch.from_arrays(
        size=2, body_force=np.array([[0.0, 0.0, 1.0], [0.0, 0.0, 2.0]])
    )
    assert per[1].body_force == (0.0, 0.0, 2.0)
    assert per.varying == ("force_z",)


def test_from_arrays_length_mismatch():
    with pytest.raises(ValueError, match="disagree"):
        ScenarioBatch.from_arrays(size=3, viscosity=[1e-3, 2e-3])
    with pytest.raises(ValueError, match="disagree"):
        ScenarioBatch.from_arrays(size=3, body_force=np.zeros((2, 3)))
    with pytest.raises(ValueError, match="body_force"):
        ScenarioBatch.from_arrays(size=3, body_force=np.zeros((3, 2)))
    with pytest.raises(ValueError, match="pass size="):
        ScenarioBatch.from_arrays()


def test_cache_key_identity():
    a = forcing_batch(3)
    b = forcing_batch(3)
    assert a.cache_key() == b.cache_key()
    # different varying *values* share the tape (values live outside it)
    c = ScenarioBatch([
        AssemblyParams(body_force=(0.0, 0.0, 0.5 * (s + 1)))
        for s in range(3)
    ])
    assert c.cache_key() == a.cache_key()
    # a different size, varying set or folded constant does not
    assert forcing_batch(4).cache_key() != a.cache_key()
    assert material_batch(3).cache_key() != a.cache_key()


# ---------------------------------------------------------------------------
# Satellite: autotune persists per (variant, mode) and per batch size
# ---------------------------------------------------------------------------


def test_autotune_persists_per_variant_and_mode():
    """Compiled and codegen winners never evict each other, and a
    batched sweep lands under its own ``<mode>@S<S>`` key that
    ``resolve_vector_dim`` prefers for matching batch sizes."""
    mesh = box_tet_mesh(3, 3, 3)  # fresh mesh: private AssemblyPlan
    ticker = itertools.count()
    timer = lambda: float(next(ticker))  # noqa: E731 -- constant deltas,
    # every candidate ties, ties break toward the smaller group size

    result = autotune_vector_dim(
        mesh, "B", candidates=[8, 16], repeats=1, timer=timer,
        mode="compiled",
    )
    plan = get_plan(mesh)
    assert result.mode == "compiled"
    assert plan.tuned_vector_dim("B", "compiled") == 8
    assert plan.tuned_vector_dim("B", "codegen") is None

    batch = forcing_batch(3)
    result = autotune_vector_dim(
        mesh, "B", candidates=[16, 32], repeats=1, timer=timer,
        mode="compiled", batch=batch,
    )
    assert result.mode == "compiled@S3"
    assert plan.tuned_vector_dim("B", "compiled@S3") == 16
    # the plain-mode winner is untouched by the batched sweep
    assert plan.tuned_vector_dim("B", "compiled") == 8

    asm = UnifiedAssembler(mesh, batch[0], mode="compiled")
    assert asm.resolve_vector_dim("B", scenarios=3) == 16
    # other batch sizes fall back to the (variant, mode) winner
    assert asm.resolve_vector_dim("B", scenarios=8) == 8
    assert asm.resolve_vector_dim("B") == 8


# ---------------------------------------------------------------------------
# Satellite: per-scenario profiler attribution stays truthful
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("mode", ["compiled", "codegen"])
def test_batched_profile_per_scenario_attribution(small_mesh, mode):
    size = 4
    batch = forcing_batch(size)
    velocity = _velocity(small_mesh, 5)
    profiler = TapeProfiler()
    asm = UnifiedAssembler(
        small_mesh, batch[0], vector_dim=32, mode=mode, profiler=profiler
    )
    asm.run_batch("RS", batch, velocity)

    # the batch size extends the serial profile key
    prof = profiler.profiles[("RS", 32, mode, "serial", size)]
    assert prof.scenarios == size
    assert prof.executions == 1
    assert prof.key() == ("RS", 32, mode, "serial", size)

    rows = prof.per_scenario_rows()
    assert rows and all(r["scenarios"] == size for r in rows)
    # per-scenario shares sum back to the whole batch's op traffic
    assert sum(r["bytes"] for r in rows) * size == pytest.approx(
        prof.total_bytes
    )
    assert sum(r["flops"] for r in rows) * size == pytest.approx(
        prof.total_flops
    )


def test_batched_byte_residual(small_mesh):
    """Byte accounting extended to batched profiles: measured traffic
    sits between one serial assembly's (shared work is paid once) and
    ``S`` times the all-vector serial bound (nothing is double-charged),
    and the shared-``vec``-op saving is visible as measured < S x serial
    measured."""
    size = 4
    batch = forcing_batch(size)
    velocity = _velocity(small_mesh, 5)
    profiler = TapeProfiler()
    asm = UnifiedAssembler(
        small_mesh, batch[0], vector_dim=32, mode="compiled",
        profiler=profiler,
    )
    asm.run_batch("RS", batch, velocity)
    prof = profiler.profiles[("RS", 32, "compiled", "serial", size)]

    serial_profiler = TapeProfiler()
    UnifiedAssembler(
        small_mesh, batch[0], vector_dim=32, mode="compiled",
        profiler=serial_profiler,
    ).assemble("RS", velocity)
    serial = serial_profiler.profiles[("RS", 32, "compiled", "serial")]
    nlane = serial.lanes[0] / serial.executions

    assert prof.report is not None and prof.report.scenarios == size
    # full-rank upper bound: every op at S * nlane, all-vector operands
    upper = prof.report.predicted_bytes(size * nlane)
    assert prof.total_bytes <= upper
    # the batch pays the shared rank-1 work once, not S times: strictly
    # cheaper than S serial assemblies, never cheaper than one
    assert serial.total_bytes <= prof.total_bytes < size * serial.total_bytes
    # the serial residual contract still holds for the serial profile
    predicted = serial.report.predicted_bytes(nlane)
    residual = (predicted - serial.total_bytes) / predicted
    assert 0.0 <= residual < BYTE_RESIDUAL_TOLERANCE


# ---------------------------------------------------------------------------
# BatchCampaign: lockstep trajectories, permanent detachment
# ---------------------------------------------------------------------------


def _solo_trajectory(mesh, params, variant, mode, vector_dim, v0, steps, dt):
    asm = UnifiedAssembler(mesh, params, mode=mode, vector_dim=vector_dim)
    solver = FractionalStepSolver(
        mesh, params,
        assemble=lambda m, u, p, a=asm, vn=variant: a.assemble(vn, u),
    )
    solver.set_velocity(v0)
    for _ in range(steps):
        solver.advance(dt)
    return solver


@pytest.mark.parametrize("variant,mode", [("B", "compiled"), ("RSP", "codegen")])
def test_batch_campaign_bitwise_matches_solo(small_mesh, variant, mode):
    size, steps, dt = 3, 2, 5e-3
    params = [
        AssemblyParams(body_force=(0.0, 0.0, 0.01 * (s + 1)))
        for s in range(size)
    ]
    v0 = 0.05 * np.random.default_rng(7).standard_normal(
        (small_mesh.nnode, 3)
    )
    camp = BatchCampaign(
        small_mesh, ScenarioBatch(params), variant=variant, mode=mode,
        vector_dim=32,
    )
    camp.set_velocities(v0)
    camp.run(steps, dt=dt)
    assert camp.detached == ()
    for s in range(size):
        solo = _solo_trajectory(
            small_mesh, params[s], variant, mode, 32, v0, steps, dt
        )
        assert np.array_equal(solo.velocity, camp.solvers[s].velocity), s
        assert np.array_equal(
            solo.pressure_field, camp.solvers[s].pressure_field
        ), s


def test_batch_campaign_detaches_faulted_scenario(small_mesh):
    size, steps, dt, bad = 3, 2, 5e-3, 1
    params = [
        AssemblyParams(body_force=(0.0, 0.0, 0.01 * (s + 1)))
        for s in range(size)
    ]
    v0 = 0.05 * np.random.default_rng(7).standard_normal(
        (small_mesh.nnode, 3)
    )
    plans = [None] * size
    plans[bad] = FaultPlan.single("momentum_rhs", "nan", index=0)
    before = _count("resilience.batch_isolations")
    camp = BatchCampaign(
        small_mesh, ScenarioBatch(params), variant="B", mode="compiled",
        vector_dim=32, fault_plans=plans,
    )
    camp.set_velocities(v0)
    reports = camp.run(steps, dt=dt)

    assert camp.detached == (bad,)
    assert _count("resilience.batch_isolations") == before + 1
    # every scenario committed every step, detached or not
    assert all(r is not None for step in reports for r in step)
    assert np.isfinite(camp.solvers[bad].velocity).all()
    assert camp.solvers[bad].step_count == steps
    # healthy scenarios never left the fast path: bitwise == solo
    for s in range(size):
        if s == bad:
            continue
        solo = _solo_trajectory(
            small_mesh, params[s], "B", "compiled", 32, v0, steps, dt
        )
        assert np.array_equal(solo.velocity, camp.solvers[s].velocity), s


# ---------------------------------------------------------------------------
# MultiprocessRunner: contiguous shards, bitwise == whole batch
# ---------------------------------------------------------------------------


def test_runner_batch_sharding_bitwise(small_mesh):
    from repro.parallel import MultiprocessRunner

    size = 5
    batch = material_batch(size)
    runner = MultiprocessRunner(
        small_mesh, batch[0], assembly_mode="compiled", variant="B"
    )
    velocity = runner.velocity
    ref = UnifiedAssembler(
        small_mesh, batch[0], mode="compiled", vector_dim=32
    ).run_batch("B", batch, velocity)
    got = runner.run_batch(batch, workers=2, velocity=velocity, vector_dim=32)
    assert np.array_equal(ref, got)
    reg = get_registry().snapshot()
    assert float(reg["runner.batch_scenarios"]["value"]) >= size


def test_runner_batch_rejects_reference_mode(small_mesh):
    from repro.parallel import MultiprocessRunner

    runner = MultiprocessRunner(
        small_mesh, AssemblyParams(), assembly_mode="reference"
    )
    with pytest.raises(ValueError, match="compiled"):
        runner.run_batch(forcing_batch(2), workers=2)
