"""Generated assembly kernels: bit-identity, caching, invalidation, wiring.

The contract of :mod:`repro.core.codegen` is the tape contract plus one
more layer: the exec-compiled generated source must produce an RHS
**bit-identical** to the interpreted backend for every variant, group
size (including padded final groups), permutation, ordering and executor
-- while fusing expression chains and hoisting loop invariants.
``np.array_equal`` (not allclose) everywhere below.
"""

import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import UnifiedAssembler, variant_names
from repro.core.autotune import autotune_vector_dim
from repro.core.codegen import (
    ElementalGeneratedKernel,
    generate_elemental_program,
    generate_program,
    generated_kernel,
)
from repro.core.tape import ElementalTape, record_program
from repro.fem import box_tet_mesh
from repro.fem.plan import get_plan
from repro.obs.metrics import get_registry
from repro.obs.profiler import TapeProfiler
from repro.physics import AssemblyParams
from repro.physics.fractional_step import resolve_assembler


def _velocity(mesh, seed=0):
    rng = np.random.default_rng(seed)
    return 0.1 * rng.standard_normal((mesh.nnode, 3))


def _count(name):
    snap = get_registry().snapshot().get(name)
    return 0.0 if snap is None else snap["value"]


# -- bit-identity --------------------------------------------------------------


@pytest.mark.parametrize("variant", variant_names())
def test_codegen_bitwise_equal_all_variants(small_mesh, params, variant):
    """Generated == interpreted == compiled replay, bit for bit."""
    u = _velocity(small_mesh)
    # 162 elements, vector_dim 100 -> padded final group
    interp = UnifiedAssembler(small_mesh, params, vector_dim=100)
    comp = UnifiedAssembler(small_mesh, params, vector_dim=100, mode="compiled")
    gen = UnifiedAssembler(small_mesh, params, vector_dim=100, mode="codegen")
    ref = interp.assemble(variant, u)
    out = gen.assemble(variant, u)
    assert np.array_equal(ref, out)
    assert np.array_equal(comp.assemble(variant, u), out)
    # second sweep reuses the cached kernel -- still identical
    assert np.array_equal(gen.assemble(variant, u), out)


@settings(max_examples=12, deadline=None)
@given(
    variant=st.sampled_from(["B", "P", "RS", "RSP", "RSPR"]),
    vector_dim=st.integers(min_value=3, max_value=200),
    seed=st.integers(min_value=0, max_value=5),
    executor=st.sampled_from(["serial", "threads"]),
)
def test_codegen_bitwise_equal_hypothesis(variant, vector_dim, seed, executor):
    """Property: bit-identity for any group size, velocity and executor."""
    mesh = box_tet_mesh(3, 3, 3)  # fresh mesh per example: no cache bleed
    params = AssemblyParams(body_force=(0.05, -0.1, 0.2))
    u = _velocity(mesh, seed)
    interp = UnifiedAssembler(mesh, params, vector_dim=vector_dim)
    kwargs = {}
    if executor == "threads":
        kwargs = dict(executor="threads", num_threads=2, chunk_groups=1)
    gen = UnifiedAssembler(
        mesh, params, vector_dim=vector_dim, mode="codegen", **kwargs
    )
    assert np.array_equal(
        interp.assemble(variant, u), gen.assemble(variant, u)
    )


def test_codegen_bitwise_with_permutation_and_ordering(small_mesh, params):
    """Packing-order changes (random or SFC permutation) keep bit-identity."""
    from repro.fem.reorder import element_order

    u = _velocity(small_mesh, 3)
    perm = np.random.default_rng(7).permutation(small_mesh.nelem)
    sfc = element_order(small_mesh, "hilbert")
    for kwargs in (dict(permutation=perm), dict(permutation=sfc)):
        interp = UnifiedAssembler(
            small_mesh, params, vector_dim=33, **kwargs
        )
        gen = UnifiedAssembler(
            small_mesh, params, vector_dim=33, mode="codegen", **kwargs
        )
        for variant in ("B", "RSPR"):
            assert np.array_equal(
                interp.assemble(variant, u), gen.assemble(variant, u)
            )


# -- caching and invalidation --------------------------------------------------


def test_generated_kernel_cached_on_plan(params):
    mesh = box_tet_mesh(3, 3, 3)
    plan = get_plan(mesh)
    kp = params.as_kernel_params()
    k1 = generated_kernel(plan, "RSP", 33, kernel_params=kp)
    hits0 = _count("codegen.cache_hits")
    execs0 = _count("codegen.source_compiles") + _count(
        "codegen.source_reuses"
    )
    k2 = generated_kernel(plan, "RSP", 33, kernel_params=kp)
    assert k2 is k1  # plan-cache hit returns the bound kernel itself
    assert _count("codegen.cache_hits") == hits0 + 1
    # ... and must not touch the source/exec layer at all
    assert (
        _count("codegen.source_compiles") + _count("codegen.source_reuses")
        == execs0
    )
    k3 = generated_kernel(plan, "RSP", 16, kernel_params=kp)
    assert k3 is not k1  # different vector_dim -> different kernel


def test_codegen_emission_is_deterministic(params):
    """Equal configs emit byte-identical source and reuse the code cache."""
    kp = params.as_kernel_params()
    p1 = generate_program("RS", 32, kernel_params=kp)
    p2 = generate_program("RS", 32, kernel_params=kp)
    assert p1.source == p2.source
    assert p1.stmt_costs == p2.stmt_costs
    assert generate_program("RS", 64, kernel_params=kp).source != p1.source


def test_codegen_invalidated_by_fix_orientation(params):
    """Repairing the mesh bumps its version; stale kernels must not survive."""
    mesh = box_tet_mesh(3, 3, 3)
    u = _velocity(mesh)
    gen = UnifiedAssembler(mesh, params, vector_dim=33, mode="codegen")
    before = gen.assemble("RS", u)
    old_plan = get_plan(mesh)

    # corrupt one element's orientation, then repair it
    with mesh.mutate():
        conn = mesh._connectivity
        conn[0, 1], conn[0, 2] = conn[0, 2].copy(), conn[0, 1].copy()
    assert mesh.fix_orientation() == 1

    plan = get_plan(mesh)
    assert plan is not old_plan  # new mesh version -> new plan -> no kernels
    gen2 = UnifiedAssembler(mesh, params, vector_dim=33, mode="codegen")
    after = gen2.assemble("RS", u)
    interp = UnifiedAssembler(mesh, params, vector_dim=33)
    assert np.array_equal(after, interp.assemble("RS", u))
    assert np.array_equal(after, before)  # repaired orientation = original


def test_elemental_program_pickles_to_identical_source(params):
    """Pool workers rebuild the exact module a parent generated."""
    kp = params.as_kernel_params()
    for variant in variant_names():
        prog = generate_elemental_program(variant, kernel_params=kp)
        clone = pickle.loads(pickle.dumps(prog))
        assert clone.source == prog.source
        kern = ElementalGeneratedKernel(clone)
        tape = ElementalTape(record_program(variant, kp))
        rng = np.random.default_rng(5)
        xel = rng.standard_normal((23, 4, 3))
        uel = rng.standard_normal((23, 4, 3))
        assert np.array_equal(kern(xel, uel), tape(xel, uel))


def test_codegen_dump_flag_writes_source(params, tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CODEGEN_DUMP", str(tmp_path))
    generate_program("RS", 8, kernel_params=params.as_kernel_params())
    dumped = tmp_path / "RS_vd8.py"
    assert dumped.exists()
    text = dumped.read_text()
    assert "def factory(" in text and "def setup(" in text


# -- fusion / arena accounting (TapeReport) ------------------------------------


def test_codegen_report_reflects_fusion(params):
    kp = params.as_kernel_params()
    gen = generate_program("B", 64, kernel_params=kp)
    replay = record_program("B", kp)
    # fused regions eliminate intermediates: fewer live buffers than the
    # 211-buffer replay arena
    assert gen.report.buffers_live < replay.report.buffers_live
    assert gen.report.fused_ops > 0
    assert gen.report.hoisted_ops > 0
    assert gen.report.pinned_buffers > 0
    summary = gen.report.summary()
    assert "ops fused" in summary and "hoisted" in summary


# -- profiler attribution ------------------------------------------------------


def test_codegen_profiled_run_keeps_bits_and_attributes_fusion(
    small_mesh, params
):
    u = _velocity(small_mesh)
    profiler = TapeProfiler()
    gen = UnifiedAssembler(
        small_mesh, params, vector_dim=32, mode="codegen", profiler=profiler
    )
    interp = UnifiedAssembler(small_mesh, params, vector_dim=32)
    assert np.array_equal(gen.assemble("RS", u), interp.assemble("RS", u))
    prof = profiler.profiles[("RS", 32, "codegen", "serial")]
    program = generate_program("RS", 32, kernel_params=params.as_kernel_params())
    assert len(prof.labels) == len(program.stmt_costs)
    # a fused statement reports the summed costs of its constituents,
    # labelled <root>+<k>
    assert any("+" in label for label in prof.labels)
    assert prof.executions >= 1
    assert sum(prof.seconds) > 0.0


# -- mode wiring ---------------------------------------------------------------


def test_resolve_assembler_codegen_spec(params):
    mesh = box_tet_mesh(3, 3, 3)
    u = _velocity(mesh)
    gen = resolve_assembler("codegen:RS", mesh, params)
    comp = resolve_assembler("compiled:RS", mesh, params)
    assert np.array_equal(gen(mesh, u, params), comp(mesh, u, params))
    with pytest.raises(ValueError, match="codegen\\[:VARIANT\\]"):
        resolve_assembler("quantum", mesh, params)


def test_autotune_vector_dim_over_codegen(params):
    mesh = box_tet_mesh(3, 3, 3)
    ticks = iter([0.0, 5.0, 10.0, 11.0])
    result = autotune_vector_dim(
        mesh,
        "RSP",
        params,
        candidates=(8, 32),
        repeats=1,
        timer=lambda: next(ticks),
        velocity=_velocity(mesh),
        mode="codegen",
        persist=False,
    )
    assert result.winner == 32
    assert result.mode == "codegen"
