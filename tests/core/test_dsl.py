"""Kernel DSL: numpy and tracing backends."""

import numpy as np
import pytest

from repro.core import (
    KernelContext,
    NumpyBackend,
    Storage,
    TracingBackend,
)


@pytest.fixture()
def ctx():
    return KernelContext(
        connectivity=np.array([[0, 1, 2, 3], [1, 2, 3, 4]]),
        coords=np.arange(15, dtype=float).reshape(5, 3),
        fields={"velocity": np.arange(15, dtype=float).reshape(5, 3) * 0.1},
        rhs=np.zeros((5, 3)),
        params={"density": 2.0, "turbulence_model": 1},
    )


# -- numpy backend -----------------------------------------------------------


def test_numpy_arithmetic(ctx):
    bk = NumpyBackend(ctx)
    a = bk.const(3.0)
    b = bk.const(4.0)
    assert ((a + b) * 2.0).payload == pytest.approx(14.0)
    assert (a - b).payload == pytest.approx(-1.0)
    assert (a / b).payload == pytest.approx(0.75)
    assert (-a).payload == pytest.approx(-3.0)
    assert (b.sqrt()).payload == pytest.approx(2.0)
    assert bk.const(27.0).cbrt().payload == pytest.approx(3.0)
    assert (1.0 + a).payload == pytest.approx(4.0)
    assert (1.0 - a).payload == pytest.approx(-2.0)
    assert (12.0 / a).payload == pytest.approx(4.0)


def test_numpy_maximum_select(ctx):
    bk = NumpyBackend(ctx)
    x = bk.const(np.array([1.0, -1.0]))
    x.payload = np.array([1.0, -1.0])
    sel = bk.select_gt(x, 0.0, bk.const(10.0), 20.0)
    assert np.allclose(sel.payload, [10.0, 20.0])
    assert np.allclose(bk.maximum(x, 0.0).payload, [1.0, 0.0])


def test_numpy_temp_store_load(ctx):
    bk = NumpyBackend(ctx)
    t = bk.temp("t", (2, 3), Storage.GLOBAL_TEMP)
    bk.store(t, (1, 2), bk.const(7.0))
    assert np.allclose(bk.load(t, (1, 2)).payload, 7.0)
    assert np.allclose(bk.load(t, (0, 0)).payload, 0.0)  # zero-initialized


def test_numpy_gathers(ctx):
    bk = NumpyBackend(ctx)
    c = bk.gather_coord(1, 2)  # node col 1 of each lane, comp 2
    assert np.allclose(c.payload, ctx.coords[[1, 2], 2])
    v = bk.gather_field("velocity", 0, 1)
    assert np.allclose(v.payload, ctx.fields["velocity"][[0, 1], 1])


def test_numpy_scatter_add_reduces(ctx):
    bk = NumpyBackend(ctx)
    bk.scatter_add_rhs(0, 0, bk.const(1.0))  # nodes 0 and 1
    bk.scatter_add_rhs(1, 0, bk.const(1.0))  # nodes 1 and 2
    assert ctx.rhs[1, 0] == pytest.approx(2.0)  # shared node got both
    assert ctx.rhs[0, 0] == pytest.approx(1.0)


def test_numpy_scatter_respects_active_mask(ctx):
    ctx.active = np.array([True, False])
    bk = NumpyBackend(ctx)
    bk.scatter_add_rhs(0, 0, bk.const(1.0))
    assert ctx.rhs[0, 0] == pytest.approx(1.0)
    assert ctx.rhs[1, 0] == pytest.approx(0.0)  # lane 1 masked


def test_numpy_params_flags(ctx):
    bk = NumpyBackend(ctx)
    assert bk.runtime_param("density").payload == pytest.approx(2.0)
    assert bk.runtime_flag("turbulence_model") == 1


# -- tracing backend ---------------------------------------------------------


def test_trace_counts_flops(ctx):
    bk = TracingBackend(ctx)
    a = bk.const(2.0)
    b = a * a + a - a / a
    assert bk.report.flops == 4
    assert b.payload == pytest.approx(5.0)  # 2*2 + 2 - 2/2, tracked on lane 0


def test_trace_counts_loads_by_storage(ctx):
    bk = TracingBackend(ctx)
    t = bk.temp("t", (4,), Storage.GLOBAL_TEMP)
    p = bk.temp("p", (4,), Storage.PRIVATE)
    bk.store(t, (0,), bk.const(1.0))
    bk.load(t, (0,))
    bk.load(p, (1,))
    rep = bk.finalize()
    assert rep.loads[Storage.GLOBAL_TEMP] == 1
    assert rep.stores[Storage.GLOBAL_TEMP] == 1
    assert rep.loads[Storage.PRIVATE] == 1
    assert len(rep.pattern) == 3


def test_trace_pattern_roundtrips_values(ctx):
    bk = TracingBackend(ctx)
    t = bk.temp("t", (2,), Storage.PRIVATE, static=True)
    bk.store(t, (0,), bk.const(5.0))
    assert bk.load(t, (0,)).payload == pytest.approx(5.0)
    # unwritten slots read as zero
    assert bk.load(t, (1,)).payload == pytest.approx(0.0)


def test_trace_mesh_events_carry_node_slot(ctx):
    bk = TracingBackend(ctx)
    bk.gather_coord(2, 1)
    bk.gather_field("velocity", 3, 0)
    bk.scatter_add_rhs(0, 2, bk.const(1.0))
    rep = bk.finalize()
    mesh_events = [e for e in rep.pattern if e.storage is Storage.MESH]
    assert [e.node_slot for e in mesh_events] == [2, 3, 0]
    assert mesh_events[2].is_store()


def test_trace_division_by_zero_is_guarded(ctx):
    bk = TracingBackend(ctx)
    z = bk.const(0.0)
    assert (bk.const(1.0) / z).payload == 0.0  # control-flow safe


def test_trace_dependency_depth(ctx):
    bk = TracingBackend(ctx)
    a = bk.const(1.0)
    for _ in range(5):
        a = a + 1.0
    assert bk.report.dependency_depth >= 5


def test_trace_peak_live_values(ctx):
    bk = TracingBackend(ctx)
    vals = [bk.const(float(i)) for i in range(10)]
    assert bk.report.peak_live_values >= 10
    del vals


def test_trace_duplicate_temp_rejected(ctx):
    bk = TracingBackend(ctx)
    bk.temp("t", (1,), Storage.PRIVATE)
    with pytest.raises(ValueError, match="declared twice"):
        bk.temp("t", (2,), Storage.PRIVATE)


def test_trace_report_helpers(traces):
    rep = traces["B"]
    assert rep.total_loads > 0 and rep.total_stores > 0
    assert rep.loadstore(Storage.GLOBAL_TEMP) == (
        rep.loads[Storage.GLOBAL_TEMP] + rep.stores[Storage.GLOBAL_TEMP]
    )
    assert "flops/element" in rep.summary()


def test_tempspec_linear_index():
    from repro.core.storage import TempSpec

    spec = TempSpec("x", (2, 3, 4), Storage.PRIVATE)
    assert spec.size == 24
    assert spec.linear_index((0, 0, 0)) == 0
    assert spec.linear_index((1, 2, 3)) == 23
    with pytest.raises(IndexError):
        spec.linear_index((2, 0, 0))
    with pytest.raises(IndexError):
        spec.linear_index((0, 0))
