"""OptimizationStudy rendering edge cases and summary plumbing."""

import pytest

from repro.core import OptimizationStudy
from repro.fem import box_tet_mesh
from repro.obs import MetricsRegistry


@pytest.fixture(scope="module")
def study():
    return OptimizationStudy(mesh=box_tet_mesh(3, 3, 3), metrics=MetricsRegistry())


def test_format_gpu_table_empty_returns_titled_table():
    out = OptimizationStudy.format_gpu_table([])
    assert "Table II" in out
    assert "empty" in out
    assert "variant" in out


def test_format_cpu_table_empty_returns_titled_table():
    out = OptimizationStudy.format_cpu_table([])
    assert "Table I" in out
    assert "empty" in out


def test_format_tables_nonempty_still_render(study):
    gpu = study.gpu_table(["RSPR"])
    cpu = study.cpu_table(["RSP"])
    assert "RSPR" in study.format_gpu_table(gpu)
    assert "RSP" in study.format_cpu_table(cpu)


def test_bench_summary_selected_variants(study):
    entries = study.bench_summary(variants=["RS"], repeats=2)
    (entry,) = entries
    assert entry["variant"] == "RS"
    assert entry["wall_ms"] > 0
    assert entry["gpu_model_runtime_ms"] > 0
    assert entry["cpu_model_runtime_ms"] > 0
    snap = study.metrics.snapshot()
    assert snap["study.wall_ms.RS"]["value"] == entry["wall_ms"]
