"""Compiled kernel tapes: bit-identity, arena reuse, caching, autotuning.

The hard contract of :mod:`repro.core.tape` is that replaying the recorded
tape through the preallocated buffer arena produces a RHS **bit-identical**
to the interpreted :class:`~repro.core.dsl.NumpyBackend` path -- for every
variant, every group size (including padded final groups) and any element
permutation.  ``np.array_equal`` (not allclose) everywhere below.
"""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import UnifiedAssembler, variant_names
from repro.core.autotune import (
    AutotuneResult,
    autotune_vector_dim,
    write_autotune_report,
)
from repro.core.dsl import KernelContext, NumpyBackend
from repro.core.storage import Storage, TempSpec
from repro.core.tape import (
    ElementalTape,
    compiled_tape,
    record_program,
    tape_cache_key,
)
from repro.fem import box_tet_mesh
from repro.fem.plan import get_plan
from repro.parallel import MultiprocessRunner
from repro.physics import AssemblyParams
from repro.physics.fractional_step import resolve_assembler
from repro.physics.momentum import element_rhs


def _velocity(mesh, seed=0):
    rng = np.random.default_rng(seed)
    return 0.1 * rng.standard_normal((mesh.nnode, 3))


# -- bit-identity --------------------------------------------------------------


@pytest.mark.parametrize("variant", variant_names())
def test_compiled_bitwise_equal_all_variants(small_mesh, params, variant):
    """Compiled == interpreted == seed no-plan path, bit for bit."""
    u = _velocity(small_mesh)
    # 162 elements, vector_dim 100 -> padded final group
    interp = UnifiedAssembler(small_mesh, params, vector_dim=100)
    comp = UnifiedAssembler(small_mesh, params, vector_dim=100, mode="compiled")
    seed = UnifiedAssembler(small_mesh, params, vector_dim=100, use_plan=False)
    ref = interp.assemble(variant, u)
    out = comp.assemble(variant, u)
    assert np.array_equal(ref, out)
    assert np.array_equal(seed.assemble(variant, u), out)


@settings(max_examples=12, deadline=None)
@given(
    variant=st.sampled_from(["B", "P", "RS", "RSP", "RSPR"]),
    vector_dim=st.integers(min_value=3, max_value=200),
    seed=st.integers(min_value=0, max_value=5),
)
def test_compiled_bitwise_equal_hypothesis(variant, vector_dim, seed):
    """Property: bit-identity holds for any group size and velocity."""
    mesh = box_tet_mesh(3, 3, 3)  # fresh mesh per example: no cache bleed
    params = AssemblyParams(body_force=(0.05, -0.1, 0.2))
    u = _velocity(mesh, seed)
    interp = UnifiedAssembler(mesh, params, vector_dim=vector_dim)
    comp = UnifiedAssembler(
        mesh, params, vector_dim=vector_dim, mode="compiled"
    )
    assert np.array_equal(
        interp.assemble(variant, u), comp.assemble(variant, u)
    )


def test_compiled_bitwise_equal_with_permutation(small_mesh, params):
    """An element permutation changes packing order, not the result bits."""
    u = _velocity(small_mesh, 3)
    perm = np.random.default_rng(7).permutation(small_mesh.nelem)
    interp = UnifiedAssembler(
        small_mesh, params, vector_dim=33, permutation=perm
    )
    comp = UnifiedAssembler(
        small_mesh, params, vector_dim=33, permutation=perm, mode="compiled"
    )
    assert np.array_equal(
        interp.assemble("RSP", u), comp.assemble("RSP", u)
    )


def test_compiled_repeat_executions_stable(small_mesh, params):
    """Arena reuse must not leak state between executions."""
    u = _velocity(small_mesh, 1)
    comp = UnifiedAssembler(small_mesh, params, vector_dim=33, mode="compiled")
    first = comp.assemble("B", u)
    for _ in range(3):
        assert np.array_equal(comp.assemble("B", u), first)
    # and a different velocity afterwards still matches interpreted
    u2 = _velocity(small_mesh, 2)
    interp = UnifiedAssembler(small_mesh, params, vector_dim=33)
    assert np.array_equal(comp.assemble("B", u2), interp.assemble("B", u2))


def test_compiled_accumulates_into_rhs(small_mesh, params):
    """execute(velocity, rhs=...) adds into the caller's array."""
    u = _velocity(small_mesh)
    plan = get_plan(small_mesh)
    tape = compiled_tape(
        plan, "RS", 33, kernel_params=params.as_kernel_params()
    )
    base = np.ones((small_mesh.nnode, 3))
    out = tape.execute(u, rhs=base)
    assert out is base
    fresh = tape.execute(u)
    assert np.array_equal(out, fresh + 1.0)


# -- arena / report ------------------------------------------------------------


@pytest.mark.parametrize("variant", variant_names())
def test_arena_smaller_than_tape(params, variant):
    """Liveness planning packs many SSA values into few buffers."""
    program = record_program(variant, params.as_kernel_params())
    rep = program.report
    assert rep.ops_live <= rep.ops_recorded
    assert 0 < rep.buffers_live < rep.ops_live
    assert rep.scatter_calls > 0
    assert rep.arena_bytes(16) == rep.buffers_live * 16 * 8
    assert variant in rep.summary()


def test_baseline_dce_removes_dead_ops(params):
    """The B variant's dead stores are eliminated; RS records a lean tape."""
    b = record_program("B", params.as_kernel_params()).report
    rs = record_program("RS", params.as_kernel_params()).report
    assert b.ops_recorded >= b.ops_live
    assert rs.ops_live < b.ops_live  # restructuring shrinks the tape
    assert rs.buffers_live < b.buffers_live


# -- caching -------------------------------------------------------------------


def test_tape_cached_on_plan(small_mesh, params):
    plan = get_plan(small_mesh)
    kp = params.as_kernel_params()
    t1 = compiled_tape(plan, "RSP", 33, kernel_params=kp)
    t2 = compiled_tape(plan, "RSP", 33, kernel_params=kp)
    assert t1 is t2
    t3 = compiled_tape(plan, "RSP", 16, kernel_params=kp)
    assert t3 is not t1  # different vector_dim -> different tape


def test_cache_key_includes_params():
    """Runtime flags specialize the recording: params must key the cache."""
    a = AssemblyParams()
    b = AssemblyParams(viscosity=2.0e-3)
    key_a = tape_cache_key("rsp", 16, None, a.as_kernel_params())
    key_b = tape_cache_key("rsp", 16, None, b.as_kernel_params())
    assert key_a != key_b
    assert key_a[0] == "RSP"


def test_tape_invalidated_by_fix_orientation(params):
    """Repairing the mesh bumps its version; stale tapes must not survive."""
    mesh = box_tet_mesh(3, 3, 3)
    u = _velocity(mesh)
    comp = UnifiedAssembler(mesh, params, vector_dim=33, mode="compiled")
    before = comp.assemble("RS", u)
    old_plan = get_plan(mesh)

    # corrupt one element's orientation, then repair it
    with mesh.mutate():
        conn = mesh._connectivity
        conn[0, 1], conn[0, 2] = conn[0, 2].copy(), conn[0, 1].copy()
    assert mesh.fix_orientation() == 1

    plan = get_plan(mesh)
    assert plan is not old_plan  # new mesh version -> new plan -> no tapes
    comp2 = UnifiedAssembler(mesh, params, vector_dim=33, mode="compiled")
    after = comp2.assemble("RS", u)
    interp = UnifiedAssembler(mesh, params, vector_dim=33)
    assert np.array_equal(after, interp.assemble("RS", u))
    assert np.array_equal(after, before)  # repaired orientation = original


# -- autotuner -----------------------------------------------------------------


def test_autotune_deterministic_with_stub_timer(params):
    """A fixed timer sequence always elects the same winner."""
    mesh = box_tet_mesh(3, 3, 3)
    u = _velocity(mesh)

    def run():
        # 2 timer reads per repeat: candidate 8 "takes" 5s, candidate 32 1s
        ticks = iter([0.0, 5.0, 10.0, 11.0])
        return autotune_vector_dim(
            mesh,
            "RSP",
            params,
            candidates=(8, 32),
            repeats=1,
            timer=lambda: next(ticks),
            velocity=u,
            persist=False,
        )
    r1, r2 = run(), run()
    assert r1.winner == r2.winner == 32
    assert r1.wall_seconds == (5.0, 1.0)
    assert r1.best_seconds == 1.0


def test_autotune_tie_breaks_to_smaller(params):
    mesh = box_tet_mesh(3, 3, 3)
    ticks = itertools.count()  # every repeat measures exactly 1 tick
    result = autotune_vector_dim(
        mesh,
        "RS",
        params,
        candidates=(64, 8),
        repeats=2,
        timer=lambda: next(ticks),
        velocity=_velocity(mesh),
        persist=False,
    )
    assert result.winner == 8


def test_autotune_persists_winner_to_plan(params):
    mesh = box_tet_mesh(3, 3, 3)
    ticks = iter([0.0, 5.0, 10.0, 11.0])
    result = autotune_vector_dim(
        mesh,
        "RSP",
        params,
        candidates=(8, 32),
        repeats=1,
        timer=lambda: next(ticks),
        velocity=_velocity(mesh),
    )
    plan = get_plan(mesh)
    assert plan.tuned_vector_dim("RSP") == result.winner == 32
    assert plan.tuned_vector_dim("B") is None

    # vector_dim=None assemblers resolve the tuned winner per variant
    asm = UnifiedAssembler(mesh, params, mode="compiled")
    assert asm.resolve_vector_dim("RSP") == 32
    assert asm.resolve_vector_dim("B") == 16  # untuned -> CPU default
    u = _velocity(mesh)
    interp = UnifiedAssembler(mesh, params, vector_dim=32)
    assert np.array_equal(asm.assemble("RSP", u), interp.assemble("RSP", u))


def test_autotune_report_roundtrip(tmp_path, params):
    mesh = box_tet_mesh(3, 3, 3)
    ticks = itertools.count()
    result = autotune_vector_dim(
        mesh, "RS", params, candidates=(8, 16), repeats=1,
        timer=lambda: next(ticks), velocity=_velocity(mesh), persist=False,
    )
    doc = write_autotune_report([result], tmp_path / "autotune.json")
    assert (tmp_path / "autotune.json").exists()
    assert doc["schema"] == "repro-autotune/1"
    assert doc["winners"] == {"RS": result.winner}
    assert doc["results"][0]["candidates"] == [8, 16]


def test_autotune_rejects_empty_candidates(params):
    mesh = box_tet_mesh(3, 3, 3)
    with pytest.raises(ValueError, match="candidate"):
        autotune_vector_dim(mesh, "RS", params, candidates=())


def test_autotune_result_to_dict():
    r = AutotuneResult(
        variant="RSP", mode="compiled", nelem=10, candidates=(8, 16),
        wall_seconds=(2.0, 1.0), winner=16, repeats=3,
    )
    d = r.to_dict()
    assert d["winner"] == 16 and d["best_seconds"] == 1.0


# -- elemental tape (multiprocess worker path) ---------------------------------


def test_elemental_tape_matches_element_rhs(small_mesh, params):
    program = record_program("RSP", params.as_kernel_params())
    tape = ElementalTape(program)
    plan = get_plan(small_mesh)
    xel = plan.packed_coords()
    uel = _velocity(small_mesh)[small_mesh.connectivity]
    out = tape(xel, uel)
    ref = element_rhs(xel, uel, params)
    assert out.shape == ref.shape == (small_mesh.nelem, 4, 3)
    assert np.allclose(out, ref, atol=1e-14)


def test_elemental_tape_chunking_consistent(small_mesh, params):
    """Chunked replay (runner-style) equals one-shot replay, bit for bit."""
    program = record_program("RS", params.as_kernel_params())
    tape = ElementalTape(program)
    plan = get_plan(small_mesh)
    xel = plan.packed_coords()
    uel = _velocity(small_mesh, 4)[small_mesh.connectivity]
    whole = ElementalTape(program)(xel, uel)
    parts = [tape(xel[s], uel[s]) for s in (slice(0, 50), slice(50, None))]
    assert np.array_equal(np.concatenate(parts), whole)


def test_runner_compiled_mode_smoke(params):
    mesh = box_tet_mesh(3, 3, 3)
    runner = MultiprocessRunner(
        mesh, params, repeats=1, assembly_mode="compiled", variant="RSP"
    )
    points = runner.measure([1])
    assert len(points) == 1 and points[0].wall_seconds > 0


def test_runner_rejects_unknown_mode(params):
    mesh = box_tet_mesh(3, 3, 3)
    with pytest.raises(ValueError, match="assembly_mode"):
        MultiprocessRunner(mesh, params, assembly_mode="jit")


# -- solver integration --------------------------------------------------------


def test_solver_compiled_spec_matches_interpreted(small_mesh, params):
    from repro.physics.fractional_step import FractionalStepSolver

    u0 = _velocity(small_mesh, 5)
    velocities = []
    for spec in ("interpreted:RS", "compiled:RS"):
        solver = FractionalStepSolver(
            small_mesh, params, assemble=spec, sweeps_per_step=1
        )
        solver.set_velocity(u0)
        solver.advance(1e-3)
        velocities.append(solver.velocity.copy())
    assert np.array_equal(velocities[0], velocities[1])


def test_resolve_assembler_specs(small_mesh, params):
    ref = resolve_assembler("reference", small_mesh, params)
    from repro.physics.momentum import assemble_momentum_rhs

    assert ref is assemble_momentum_rhs
    comp = resolve_assembler("compiled:rs", small_mesh, params)
    assert comp.variant == "RS"
    assert comp.assembler.mode == "compiled"
    with pytest.raises(ValueError, match="spec"):
        resolve_assembler("jit:RS", small_mesh, params)


def test_kernel_assembler_rejects_foreign_mesh_and_params(small_mesh, params):
    from repro.physics.momentum import kernel_rhs_assembler

    assemble = kernel_rhs_assembler(small_mesh, params, mode="compiled")
    other = box_tet_mesh(2, 2, 2)
    u = _velocity(small_mesh)
    with pytest.raises(ValueError, match="mesh"):
        assemble(other, _velocity(other), params)
    with pytest.raises(ValueError, match="params"):
        assemble(small_mesh, u, AssemblyParams(viscosity=9.0))


# -- write_before_read temp contract (NumpyBackend satellite) ------------------


def test_temp_write_before_read_skips_zero_fill():
    ctx = KernelContext(
        connectivity=np.zeros((4, 4), dtype=np.int64),
        coords=np.zeros((4, 3)),
        fields={},
        rhs=np.zeros((4, 3)),
        params={},
    )
    bk = NumpyBackend(ctx)
    zeroed = bk.temp("z", (2,), Storage.PRIVATE)
    assert np.array_equal(zeroed.data, np.zeros_like(zeroed.data))
    hot = bk.temp("h", (2,), Storage.PRIVATE, write_before_read=True)
    assert hot.data.shape == zeroed.data.shape  # contents undefined by contract
    spec = TempSpec(name="h", shape=(2,), storage=Storage.PRIVATE,
                    write_before_read=True)
    assert spec.write_before_read
