"""Threaded tape execution: determinism, chunking, and the chunk autotuner."""

import numpy as np
import pytest

from repro.core import (
    UnifiedAssembler,
    autotune_chunk_groups,
    compiled_tape,
)
from repro.fem import box_tet_mesh, get_plan
from repro.parallel import default_chunk_groups, resolve_num_threads
from repro.parallel.threads import SlabPool


@pytest.fixture()
def small_velocity(small_mesh):
    rng = np.random.default_rng(11)
    return 0.1 * rng.standard_normal((small_mesh.nnode, 3))


# -- executor plumbing -------------------------------------------------------


def test_resolve_num_threads_explicit_wins(monkeypatch):
    monkeypatch.setenv("REPRO_NUM_THREADS", "3")
    assert resolve_num_threads(5) == 5
    assert resolve_num_threads() == 3
    monkeypatch.delenv("REPRO_NUM_THREADS")
    assert resolve_num_threads() >= 1


def test_default_chunk_groups_bounds():
    # never more groups than exist, never below one
    assert default_chunk_groups(10, 64, 7, 4) <= 7
    assert default_chunk_groups(10**6, 4096, 100, 64) >= 1
    # cache pressure shrinks the chunk as buffers grow
    small = default_chunk_groups(4, 64, 10**6, 1)
    large = default_chunk_groups(400, 64, 10**6, 1)
    assert large <= small


def test_slab_pool_recycles_buffers():
    pool = SlabPool(nbufs=3, lanes=8, count=2)
    a1 = pool.acquire()
    a2 = pool.acquire()
    assert a1[0].shape == (3, 8) and a1[1].shape == (8,)
    pool.release(*a1)
    a3 = pool.acquire()
    assert a3[0] is a1[0]
    pool.release(*a2)
    pool.release(*a3)


def test_unified_rejects_threads_outside_compiled(small_mesh, params):
    with pytest.raises(ValueError, match="compiled"):
        UnifiedAssembler(
            small_mesh, params, vector_dim=16, mode="interpreted",
            executor="threads",
        )
    with pytest.raises(ValueError, match="executor"):
        UnifiedAssembler(
            small_mesh, params, vector_dim=16, mode="compiled",
            executor="fibers",
        )


# -- bitwise determinism -----------------------------------------------------


@pytest.mark.parametrize("variant", ["B", "RS", "RSPR"])
def test_threaded_bitwise_equals_serial(small_mesh, params, small_velocity, variant):
    serial = UnifiedAssembler(
        small_mesh, params, vector_dim=16, mode="compiled"
    ).assemble(variant, small_velocity)
    for threads, chunks in ((1, 2), (2, 3), (4, 1), (4, 5)):
        threaded = UnifiedAssembler(
            small_mesh, params, vector_dim=16, mode="compiled",
            executor="threads", num_threads=threads, chunk_groups=chunks,
        ).assemble(variant, small_velocity)
        assert np.array_equal(threaded, serial), (threads, chunks)


def test_threaded_runs_are_deterministic(small_mesh, params, small_velocity):
    asm = UnifiedAssembler(
        small_mesh, params, vector_dim=16, mode="compiled",
        executor="threads", num_threads=4, chunk_groups=2,
    )
    runs = [asm.assemble("RSP", small_velocity) for _ in range(3)]
    assert np.array_equal(runs[0], runs[1])
    assert np.array_equal(runs[0], runs[2])


def test_execute_chunked_direct_matches_execute(small_mesh, params, small_velocity):
    tape = compiled_tape(
        get_plan(small_mesh), "RSP", 16,
        kernel_params=params.as_kernel_params(),
    )
    base = tape.execute(small_velocity)
    for cg in (1, 2, 1000):
        out = tape.execute_chunked(
            small_velocity, num_threads=2, chunk_groups=cg
        )
        assert np.array_equal(out, base)


# -- chunk autotuner ---------------------------------------------------------


def test_autotune_chunk_groups_deterministic_with_stub_timer(params):
    mesh = box_tet_mesh(3, 3, 3)
    rng = np.random.default_rng(0)
    u = 0.1 * rng.standard_normal((mesh.nnode, 3))
    # stub clock: candidate i takes (i+1) ticks -> first candidate wins
    ticks = iter(range(10_000))
    result = autotune_chunk_groups(
        mesh,
        "RS",
        params,
        candidates=(4, 2, 8),
        repeats=2,
        timer=lambda: next(ticks),
        vector_dim=16,
        num_threads=2,
        velocity=u,
    )
    assert result.parameter == "chunk_groups"
    assert result.mode == "compiled"
    assert result.winner in (2, 4, 8)
    assert len(result.wall_seconds) == 3
    assert get_plan(mesh).tuned_chunk_groups("RS") == result.winner
    # a threaded assembler without an explicit chunk size picks it up
    asm = UnifiedAssembler(
        mesh, params, vector_dim=16, mode="compiled", executor="threads"
    )
    serial = UnifiedAssembler(mesh, params, vector_dim=16, mode="compiled")
    assert np.array_equal(asm.assemble("RS", u), serial.assemble("RS", u))


def test_autotune_chunk_groups_requires_candidates(small_mesh, params):
    with pytest.raises(ValueError, match="candidate"):
        autotune_chunk_groups(small_mesh, "RS", params, candidates=())
