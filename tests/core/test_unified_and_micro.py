"""Unified driver and the Listing 3 microbenchmark (Table III)."""

import numpy as np
import pytest

from repro.core import GPU_VECTOR_DIM, CPU_VECTOR_DIM, UnifiedAssembler
from repro.core.microbench import ROWLEN, run_listing3
from repro.core.dsl import KernelContext, NumpyBackend
from repro.core.storage import Storage
from repro.io.report import PAPER_TABLE3


def test_vector_dim_constants():
    assert CPU_VECTOR_DIM == 16
    assert GPU_VECTOR_DIM == 2048 * 1024


def test_assemble_rejects_bad_velocity(medium_mesh, params):
    asm = UnifiedAssembler(medium_mesh, params)
    with pytest.raises(ValueError, match="velocity"):
        asm.assemble("B", np.zeros((3, 3)))


def test_trace_defaults_to_zero_velocity(medium_mesh, params):
    asm = UnifiedAssembler(medium_mesh, params, vector_dim=8)
    rep = asm.trace("RS")
    assert rep.flops > 0


def test_trace_group_index(medium_mesh, params):
    asm = UnifiedAssembler(medium_mesh, params, vector_dim=8)
    r0 = asm.trace("RS", group_index=0)
    r1 = asm.trace("RS", group_index=1)
    # pattern structure is identical for any group (data-independent kernel)
    assert r0.flops == r1.flops
    assert len(r0.pattern) == len(r1.pattern)


# -- Listing 3 / Table III -----------------------------------------------------


def test_listing3_numerics():
    """temp(row) = (row+1)*A; B = sum(temp) = A * rowlen(rowlen+1)/2."""
    ctx = KernelContext(
        connectivity=np.zeros((4, 4), dtype=np.int64),
        coords=np.zeros((4, 3)),
        fields={},
        rhs=np.zeros((4, 3)),
        params={},
    )
    bk = NumpyBackend(ctx)
    temp = bk.temp("temp", (ROWLEN,), Storage.PRIVATE, static=True)
    b_arr = bk.temp("B", (1,), Storage.GLOBAL_TEMP)
    a = bk.const(2.0)
    for row in range(ROWLEN):
        bk.store(temp, (row,), float(row + 1) * a)
    acc = bk.const(0.0)
    for row in range(ROWLEN):
        acc = acc + bk.load(temp, (row,))
    bk.store(b_arr, (0,), acc)
    expected = 2.0 * ROWLEN * (ROWLEN + 1) / 2.0
    assert np.allclose(b_arr.data[:, 0], expected)


@pytest.mark.parametrize("mapping", ["global", "local", "registers"])
def test_table3_exact_match(mapping):
    """Table III reproduces exactly: store counts and volumes per thread."""
    res = run_listing3()[mapping]
    paper = PAPER_TABLE3[mapping]
    assert res.local_stores == paper["local_stores"]
    assert res.global_stores == paper["global_stores"]
    assert res.l2_store_bytes == paper["l2_store_bytes"]
    assert res.dram_store_bytes == paper["dram_store_bytes"]


def test_table3_mechanism():
    """Local stores reach L2 but not DRAM; register mapping kills both."""
    res = run_listing3()
    assert res["local"].l2_store_bytes == res["global"].l2_store_bytes
    assert res["local"].dram_store_bytes < res["global"].dram_store_bytes
    assert res["registers"].l2_store_bytes < res["local"].l2_store_bytes
