"""Variant equality (the paper's premise) and trace shapes (its findings)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    SpecializationError,
    Storage,
    UnifiedAssembler,
    VARIANTS,
    get_variant,
    make_specialized_kernel,
    variant_names,
)
from repro.fem import box_tet_mesh
from repro.physics import (
    AssemblyParams,
    ConvectiveForm,
    TurbulenceModel,
    assemble_momentum_rhs,
)

ALL = ("B", "P", "RS", "RSP", "RSPR")


# -- registry ----------------------------------------------------------------


def test_registry_contents():
    assert set(VARIANTS) == set(ALL)
    assert variant_names("cpu") == ("B", "RS", "RSP")
    assert variant_names("gpu") == ALL


def test_rspr_is_gpu_only():
    v = get_variant("RSPR")
    assert v.supports("gpu") and not v.supports("cpu")
    assert v.immediate_scatter and v.privatized and v.specialized


def test_get_variant_case_insensitive():
    assert get_variant("rsp").name == "RSP"
    with pytest.raises(KeyError, match="unknown variant"):
        get_variant("XYZ")


# -- numerical equality -------------------------------------------------------


@pytest.mark.parametrize("name", ALL)
def test_variant_matches_reference(name, medium_mesh, params, velocity):
    asm = UnifiedAssembler(medium_mesh, params, vector_dim=32)
    ref = assemble_momentum_rhs(medium_mesh, velocity, params)
    rhs = asm.assemble(name, velocity)
    scale = np.abs(ref).max()
    assert np.abs(rhs - ref).max() < 1e-12 * scale


@pytest.mark.parametrize("vdim", [1, 7, 16, 200, 5000])
def test_equality_independent_of_vector_dim(vdim, small_mesh, params):
    rng = np.random.default_rng(5)
    u = 0.2 * rng.standard_normal((small_mesh.nnode, 3))
    ref = assemble_momentum_rhs(small_mesh, u, params)
    asm = UnifiedAssembler(small_mesh, params, vector_dim=vdim)
    rhs = asm.assemble("RSP", u)
    assert np.allclose(rhs, ref, rtol=1e-12, atol=1e-14)


def test_equality_on_jittered_mesh(jittered_mesh, params):
    rng = np.random.default_rng(6)
    u = 0.1 * rng.standard_normal((jittered_mesh.nnode, 3))
    ref = assemble_momentum_rhs(jittered_mesh, u, params)
    asm = UnifiedAssembler(jittered_mesh, params, vector_dim=16)
    for name in ALL:
        assert np.allclose(asm.assemble(name, u), ref, rtol=1e-11, atol=1e-13)


def test_zero_velocity_gives_pure_force(small_mesh, params):
    """With u = 0 the RHS is the body-force integral: rho*f*V/4 per node/elem."""
    asm = UnifiedAssembler(small_mesh, params, vector_dim=16)
    rhs = asm.assemble("RSPR", np.zeros((small_mesh.nnode, 3)))
    from repro.fem import lumped_mass

    mass = lumped_mass(small_mesh)
    expected = (
        params.density
        * mass[:, None]
        * np.asarray(params.body_force)[None, :]
    )
    assert np.allclose(rhs, expected, rtol=1e-12)


def test_rigid_translation_has_no_viscous_term(small_mesh):
    """Uniform velocity: no gradients -> RHS is force only (conv = 0)."""
    p = AssemblyParams(body_force=(0.0, 0.0, 0.0))
    asm = UnifiedAssembler(small_mesh, p, vector_dim=16)
    u = np.tile([0.3, -0.2, 0.1], (small_mesh.nnode, 1))
    rhs = asm.assemble("RS", u)
    assert np.abs(rhs).max() < 1e-13


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 1000))
def test_property_all_variants_agree(seed):
    mesh = box_tet_mesh(2, 2, 2)
    params = AssemblyParams(body_force=(0.1, 0.0, -0.1))
    rng = np.random.default_rng(seed)
    u = rng.standard_normal((mesh.nnode, 3))
    asm = UnifiedAssembler(mesh, params, vector_dim=16)
    base = asm.assemble("B", u)
    for name in ("P", "RS", "RSP", "RSPR"):
        assert np.allclose(asm.assemble(name, u), base, rtol=1e-11, atol=1e-13)


# -- specialization boundary ---------------------------------------------------


def test_specialized_rejects_wrong_density(medium_mesh):
    asm = UnifiedAssembler(medium_mesh, AssemblyParams(density=2.0))
    with pytest.raises(SpecializationError, match="density"):
        asm.assemble("RS", np.zeros((medium_mesh.nnode, 3)))


def test_specialized_rejects_wrong_model(medium_mesh):
    asm = UnifiedAssembler(
        medium_mesh,
        AssemblyParams(turbulence_model=TurbulenceModel.SMAGORINSKY),
    )
    with pytest.raises(SpecializationError, match="Vreman"):
        asm.assemble("RSP", np.zeros((medium_mesh.nnode, 3)))


def test_specialized_rejects_wrong_form(medium_mesh):
    asm = UnifiedAssembler(
        medium_mesh,
        AssemblyParams(convective_form=ConvectiveForm.SKEW_SYMMETRIC),
    )
    with pytest.raises(SpecializationError, match="advective"):
        asm.assemble("RSPR", np.zeros((medium_mesh.nnode, 3)))


def test_baseline_accepts_nonstandard_params(medium_mesh):
    asm = UnifiedAssembler(medium_mesh, AssemblyParams(density=2.0))
    rhs = asm.assemble("B", np.zeros((medium_mesh.nnode, 3)))
    assert np.isfinite(rhs).all()


def test_rebuilt_specialized_kernel_handles_new_constants(small_mesh):
    """Specialization means: build a new kernel for new constants."""
    from repro.core.dsl import KernelContext, NumpyBackend

    params = AssemblyParams(density=3.0, viscosity=0.01)
    kernel = make_specialized_kernel(
        Storage.PRIVATE, density=3.0, viscosity=0.01
    )
    rng = np.random.default_rng(2)
    u = 0.1 * rng.standard_normal((small_mesh.nnode, 3))
    ref = assemble_momentum_rhs(small_mesh, u, params)
    rhs = np.zeros((small_mesh.nnode, 3))
    ctx = KernelContext(
        connectivity=small_mesh.connectivity,
        coords=small_mesh.coords,
        fields={"velocity": u},
        rhs=rhs,
        params=params.as_kernel_params(),
    )
    kernel(NumpyBackend(ctx), ctx)
    assert np.allclose(rhs, ref, rtol=1e-12)


def test_immediate_scatter_requires_private():
    with pytest.raises(ValueError, match="immediate scatter"):
        make_specialized_kernel(Storage.GLOBAL_TEMP, immediate_scatter=True)


# -- trace shapes: the paper's measured effects --------------------------------


def test_baseline_temp_inventory(traces):
    """B: ~430 temp values in ~18-32 arrays (paper: 430 in 32)."""
    rep = traces["B"]
    slots = rep.temp_slots(Storage.GLOBAL_TEMP)
    assert 400 <= slots <= 500
    assert rep.temp_arrays(Storage.GLOBAL_TEMP) >= 15


def test_rs_reduces_temps(traces):
    """RS: far fewer temporaries (paper: 130 values in 13 arrays)."""
    b = traces["B"].temp_slots(Storage.GLOBAL_TEMP)
    rs = traces["RS"].temp_slots(Storage.GLOBAL_TEMP)
    assert rs < b / 4


def test_rs_reduces_flops_3_to_8x(traces):
    ratio = traces["B"].flops / traces["RS"].flops
    assert 3.0 <= ratio <= 10.0  # paper: ~3.6-3.8x


def test_privatization_changes_storage_not_flops(traces):
    assert traces["P"].flops == traces["B"].flops
    assert traces["P"].loadstore(Storage.GLOBAL_TEMP) == 0
    assert traces["P"].loadstore(Storage.PRIVATE) == traces["B"].loadstore(
        Storage.GLOBAL_TEMP
    )


def test_rsp_equals_rs_except_storage(traces):
    assert traces["RSP"].flops == traces["RS"].flops
    assert traces["RSP"].loadstore(Storage.PRIVATE) == traces[
        "RS"
    ].loadstore(Storage.GLOBAL_TEMP)


def test_rspr_more_mesh_loads_fewer_private(traces):
    """The paper's RSPR: more global loads, fewer live values than RSP."""
    assert traces["RSPR"].loads[Storage.MESH] > traces["RSP"].loads[Storage.MESH]
    assert traces["RSPR"].loadstore(Storage.PRIVATE) < traces[
        "RSP"
    ].loadstore(Storage.PRIVATE)


def test_baseline_has_branches_specialized_none(traces):
    assert traces["B"].branches > 0
    assert traces["RS"].branches == 0
    assert traces["RSPR"].branches == 0


def test_specialized_arrays_are_static(traces):
    assert all(t.static for t in traces["RSP"].temps.values())
    assert not any(t.static for t in traces["B"].temps.values())
