"""Geometry: Jacobians, Cartesian gradients, specialized-vs-generic paths."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fem import (
    GeometryError,
    TET04,
    generic_geometry,
    rule_for,
    tet4_geometry,
    tet4_gradients,
)
from repro.fem.reference import element

RULE = rule_for("TET04", 4)


def _random_tets(n, seed=0, scale=1.0):
    """Random positively-oriented tets (reference tet + perturbation)."""
    rng = np.random.default_rng(seed)
    base = np.array(
        [[0, 0, 0], [1, 0, 0], [0, 1, 0], [0, 0, 1]], dtype=float
    )
    out = np.empty((n, 4, 3))
    for i in range(n):
        while True:
            x = base * scale + 0.15 * scale * rng.standard_normal((4, 3))
            d = np.linalg.det(x[1:] - x[0])
            if d > 1e-3 * scale**3:
                out[i] = x
                break
    return out


def test_reference_tet_gradients():
    xel = np.array([[[0, 0, 0], [1, 0, 0], [0, 1, 0], [0, 0, 1]]], dtype=float)
    grads, dets = tet4_gradients(xel)
    from repro.fem.reference import TET04_GRAD

    assert np.allclose(grads[0], TET04_GRAD)
    assert dets[0] == pytest.approx(1.0)


def test_gradients_scale_inversely():
    xel = _random_tets(5, seed=1)
    g1, d1 = tet4_gradients(xel)
    g2, d2 = tet4_gradients(2.0 * xel)
    assert np.allclose(g2, g1 / 2.0)
    assert np.allclose(d2, 8.0 * d1)


def test_gradients_translation_invariant():
    xel = _random_tets(5, seed=2)
    g1, d1 = tet4_gradients(xel)
    g2, d2 = tet4_gradients(xel + np.array([3.0, -1.0, 7.0]))
    assert np.allclose(g1, g2)
    assert np.allclose(d1, d2)


def test_gradients_reproduce_linear_field():
    """sum_a dN_a/dx * f(x_a) == grad f for linear f."""
    xel = _random_tets(8, seed=3)
    grads, _ = tet4_gradients(xel)
    coeff = np.array([1.5, -0.3, 2.2])
    nodal = xel @ coeff  # (n, 4)
    recovered = np.einsum("eaj,ea->ej", grads, nodal)
    assert np.allclose(recovered, np.tile(coeff, (8, 1)), atol=1e-10)


def test_gradient_rows_sum_to_zero():
    grads, _ = tet4_gradients(_random_tets(6, seed=4))
    assert np.allclose(grads.sum(axis=1), 0.0, atol=1e-12)


def test_rejects_inverted_element():
    xel = _random_tets(1, seed=5)
    xel = xel[:, [0, 2, 1, 3], :]  # swap -> negative det
    with pytest.raises(GeometryError, match="non-positive"):
        tet4_gradients(xel)


def test_rejects_bad_shape():
    with pytest.raises(GeometryError, match="expected"):
        tet4_gradients(np.zeros((3, 5, 3)))


def test_specialized_matches_generic():
    """The S transformation must not change the geometry factors."""
    xel = _random_tets(10, seed=6)
    spec = tet4_geometry(xel, RULE)
    gen = generic_geometry(xel, TET04, RULE)
    for q in range(RULE.ngauss):
        assert np.allclose(
            spec.cartesian_gradients[:, 0], gen.cartesian_gradients[:, q]
        )
        assert np.allclose(spec.jacobian_dets[:, 0], gen.jacobian_dets[:, q])
    assert np.allclose(spec.volumes(), gen.volumes())


def test_volumes_match_direct_formula():
    xel = _random_tets(10, seed=7)
    geo = tet4_geometry(xel, RULE)
    direct = (
        np.einsum(
            "ei,ei->e",
            np.cross(xel[:, 1] - xel[:, 0], xel[:, 2] - xel[:, 0]),
            xel[:, 3] - xel[:, 0],
        )
        / 6.0
    )
    assert np.allclose(geo.volumes(), direct)


@pytest.mark.parametrize("name", ["HEX08", "PEN06", "PYR05"])
def test_generic_geometry_reference_volume(name):
    ref = element(name)
    rule = rule_for(name)
    xel = ref.node_coords[None, :, :]
    geo = generic_geometry(xel, ref, rule)
    assert geo.volumes()[0] == pytest.approx(ref.reference_volume, rel=1e-10)


def test_generic_geometry_rejects_mismatched_rule():
    with pytest.raises(GeometryError, match="rule"):
        generic_geometry(
            element("HEX08").node_coords[None], element("HEX08"), RULE
        )


@settings(max_examples=20, deadline=None)
@given(scale=st.floats(0.1, 10.0), seed=st.integers(0, 100))
def test_measures_sum_to_volume(scale, seed):
    xel = _random_tets(3, seed=seed, scale=scale)
    geo = tet4_geometry(xel, RULE)
    # 4-pt rule: 4 equal weights of 1/24 -> measures sum to the volume
    assert np.allclose(geo.measures.sum(axis=1), geo.volumes(), rtol=1e-10)
    assert np.allclose(geo.measures[:, 0] * 4, geo.volumes(), rtol=1e-10)
