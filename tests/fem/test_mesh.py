"""TetMesh container: volumes, topology, validation, manipulation."""

import numpy as np
import pytest

from repro.fem import MeshValidationError, TetMesh, box_tet_mesh


UNIT_TET = TetMesh(
    np.array([[0, 0, 0], [1, 0, 0], [0, 1, 0], [0, 0, 1]], dtype=float),
    np.array([[0, 1, 2, 3]]),
)


def test_unit_tet_volume():
    assert UNIT_TET.total_volume() == pytest.approx(1.0 / 6.0)


def test_box_mesh_counts():
    m = box_tet_mesh(3, 4, 5)
    assert m.nelem == 3 * 4 * 5 * 6
    assert m.nnode == 4 * 5 * 6


def test_box_mesh_volume(medium_mesh):
    assert medium_mesh.total_volume() == pytest.approx(1.0, rel=1e-12)


def test_box_mesh_scaled_volume():
    m = box_tet_mesh(2, 2, 2, lengths=(2.0, 3.0, 0.5))
    assert m.total_volume() == pytest.approx(3.0, rel=1e-12)


def test_all_volumes_positive(medium_mesh):
    assert (medium_mesh.element_volumes() > 0).all()


def test_quality_in_unit_interval(medium_mesh):
    q = medium_mesh.element_quality()
    assert (q > 0).all() and (q <= 1.0 + 1e-12).all()


def test_regular_tet_quality_is_one():
    # regular tetrahedron with unit edges
    coords = np.array(
        [
            [0, 0, 0],
            [1, 0, 0],
            [0.5, np.sqrt(3) / 2, 0],
            [0.5, np.sqrt(3) / 6, np.sqrt(6) / 3],
        ]
    )
    m = TetMesh(coords, np.array([[0, 1, 2, 3]]))
    assert m.element_quality()[0] == pytest.approx(1.0, abs=1e-10)


def test_fix_orientation_flips_inverted():
    conn = np.array([[0, 2, 1, 3]])  # inverted unit tet
    m = TetMesh(UNIT_TET.coords.copy(), conn)
    assert m.element_volumes()[0] < 0
    assert m.fix_orientation() == 1
    assert m.element_volumes()[0] > 0
    assert m.fix_orientation() == 0  # idempotent


def test_boundary_faces_of_single_tet():
    assert UNIT_TET.boundary_faces().shape == (4, 3)


def test_boundary_faces_of_box(medium_mesh):
    faces = medium_mesh.boundary_faces()
    # 6 sides x (6*6 quads per side) x 2 triangles per quad
    assert faces.shape[0] == 6 * 36 * 2


def test_boundary_nodes_of_box(medium_mesh):
    n = 7  # nodes per side
    expected = n**3 - (n - 2) ** 3
    assert len(medium_mesh.boundary_nodes()) == expected


def test_node_element_adjacency(small_mesh):
    offsets, elems = small_mesh.node_element_adjacency()
    assert offsets[-1] == small_mesh.nelem * 4
    # node 0 (a corner) belongs to at least one element
    assert offsets[1] > offsets[0]
    # every listed element actually contains its node
    for node in (0, small_mesh.nnode // 2):
        for e in elems[offsets[node] : offsets[node + 1]]:
            assert node in small_mesh.connectivity[e]


def test_node_neighbours_symmetric(small_mesh):
    offsets, nbrs = small_mesh.node_neighbours()
    adj = {
        (i, int(j))
        for i in range(small_mesh.nnode)
        for j in nbrs[offsets[i] : offsets[i + 1]]
    }
    assert all((j, i) in adj for (i, j) in adj)
    assert all(i != j for (i, j) in adj)


def test_validation_rejects_out_of_range():
    with pytest.raises(MeshValidationError, match="node ids"):
        TetMesh(UNIT_TET.coords, np.array([[0, 1, 2, 9]]))


def test_validation_rejects_degenerate():
    with pytest.raises(MeshValidationError, match="repeated node"):
        TetMesh(UNIT_TET.coords, np.array([[0, 1, 1, 3]]))


def test_validation_rejects_nan_coords():
    coords = UNIT_TET.coords.copy()
    coords[0, 0] = np.nan
    with pytest.raises(MeshValidationError, match="non-finite"):
        TetMesh(coords, UNIT_TET.connectivity)


def test_validation_rejects_bad_shapes():
    with pytest.raises(MeshValidationError, match="coords"):
        TetMesh(np.zeros((4, 2)), UNIT_TET.connectivity)
    with pytest.raises(MeshValidationError, match="connectivity"):
        TetMesh(UNIT_TET.coords, np.array([[0, 1, 2]]))


def test_subset_preserves_geometry(medium_mesh):
    sub, node_map = medium_mesh.subset(range(10))
    assert sub.nelem == 10
    assert np.allclose(sub.coords, medium_mesh.coords[node_map])
    assert sub.element_volumes().sum() == pytest.approx(
        medium_mesh.element_volumes()[:10].sum()
    )


def test_renumber_roundtrip(small_mesh):
    rng = np.random.default_rng(0)
    perm = rng.permutation(small_mesh.nnode)
    renum = small_mesh.renumber_nodes(perm)
    assert renum.total_volume() == pytest.approx(small_mesh.total_volume())
    # volumes per element unchanged
    assert np.allclose(
        renum.element_volumes(), small_mesh.element_volumes()
    )


def test_renumber_rejects_non_bijection(small_mesh):
    with pytest.raises(MeshValidationError, match="bijection"):
        small_mesh.renumber_nodes(np.zeros(small_mesh.nnode, dtype=int))


def test_statistics(medium_mesh):
    s = medium_mesh.statistics()
    assert s.nnode == medium_mesh.nnode
    assert s.volume == pytest.approx(1.0)
    assert 0 < s.min_quality <= s.mean_quality <= 1.0
    lo, hi = s.bounding_box
    assert np.allclose(lo, 0.0) and np.allclose(hi, 1.0)
