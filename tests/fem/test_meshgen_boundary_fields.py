"""Mesh generators, boundary classification and field containers."""

import numpy as np
import pytest

from repro.fem import (
    DirichletBC,
    ElementField,
    NodalField,
    bolund_like_mesh,
    box_tet_mesh,
    channel_mesh,
    classify_box_boundaries,
    lumped_mass,
    perturbed_box_mesh,
)
from repro.fem.meshgen import structured_grid


# -- generators --------------------------------------------------------------


def test_structured_grid_shapes():
    coords, hexes = structured_grid(2, 3, 4)
    assert coords.shape == (3 * 4 * 5, 3)
    assert hexes.shape == (24, 8)


def test_structured_grid_rejects_empty():
    with pytest.raises(ValueError):
        structured_grid(0, 1, 1)


def test_bolund_mesh_valid(bolund_mesh):
    assert (bolund_mesh.element_volumes() > 0).all()
    # terrain raises the ground: min z above hill is > domain floor at center
    assert bolund_mesh.coords[:, 2].max() == pytest.approx(4.0, rel=1e-6)


def test_bolund_hill_exists(bolund_mesh):
    """The terrain (lowest node per column) rises near the origin."""
    coords = bolund_mesh.coords
    r = np.hypot(coords[:, 0], coords[:, 1])
    near_terrain = coords[r < 1.0][:, 2].min()
    far_terrain = coords[r > 4.0][:, 2].min()
    assert near_terrain > far_terrain + 0.2


def test_channel_mesh_wall_grading():
    m = channel_mesh(nx=4, ny=4, nz=8, wall_grading=2.0)
    z = np.unique(np.round(m.coords[:, 2], 12))
    gaps = np.diff(z)
    # graded: wall spacing much finer than centre spacing
    assert gaps[0] < 0.5 * gaps[len(gaps) // 2]
    assert (m.element_volumes() > 0).all()


def test_perturbed_mesh_keeps_boundary_and_volume():
    base = box_tet_mesh(4, 4, 4)
    pert = perturbed_box_mesh(4, 4, 4, amplitude=0.1, seed=1)
    b = base.boundary_nodes()
    assert np.allclose(base.coords[b], pert.coords[b])
    assert pert.total_volume() == pytest.approx(1.0, rel=1e-12)
    assert (pert.element_volumes() > 0).all()


def test_perturbed_mesh_rejects_huge_amplitude():
    with pytest.raises(ValueError, match="amplitude"):
        perturbed_box_mesh(3, 3, 3, amplitude=5.0)


# -- boundary ----------------------------------------------------------------


def test_classify_box_boundaries(medium_mesh):
    regions = classify_box_boundaries(medium_mesh)
    n = 7
    for side in ("xmin", "xmax", "ymin", "ymax", "zmax", "zmin"):
        assert regions[side].nfaces > 0, side
    # total faces = boundary faces
    total = sum(r.nfaces for r in regions.values())
    assert total == medium_mesh.boundary_faces().shape[0]
    # a face belongs to exactly one region (sum of uniques consistent)
    assert regions["xmin"].nodes.min() >= 0
    assert len(regions["zmax"].nodes) == n * n


def test_classify_terrain_ground(bolund_mesh):
    regions = classify_box_boundaries(bolund_mesh)
    # terrain-following ground faces all end up in zmin
    assert regions["zmin"].nfaces > 0
    assert regions["other"].nfaces == 0


def test_dirichlet_constant(medium_mesh):
    regions = classify_box_boundaries(medium_mesh)
    bc = DirichletBC(regions["xmin"].nodes, np.array([1.0, 2.0, 3.0]))
    field = np.zeros((medium_mesh.nnode, 3))
    bc.apply(field, medium_mesh.coords)
    assert np.allclose(field[regions["xmin"].nodes], [1.0, 2.0, 3.0])
    untouched = np.setdiff1d(
        np.arange(medium_mesh.nnode), regions["xmin"].nodes
    )
    assert np.allclose(field[untouched], 0.0)


def test_dirichlet_callable_and_components(medium_mesh):
    regions = classify_box_boundaries(medium_mesh)
    nodes = regions["zmax"].nodes
    bc = DirichletBC(nodes, lambda c: np.column_stack(
        [c[:, 0], c[:, 1], c[:, 2]]
    ), components=(2,))
    field = np.ones((medium_mesh.nnode, 3))
    bc.apply(field, medium_mesh.coords)
    assert np.allclose(field[nodes, 2], medium_mesh.coords[nodes, 2])
    assert np.allclose(field[nodes, 0], 1.0)  # untouched component


# -- fields ------------------------------------------------------------------


def test_nodal_field_shapes(medium_mesh):
    f = NodalField(medium_mesh, ncomp=3, name="u")
    assert f.data.shape == (medium_mesh.nnode, 3)
    assert f.ncomp == 3
    with pytest.raises(ValueError, match="expected shape"):
        NodalField(medium_mesh, ncomp=3, data=np.zeros((5, 3)))


def test_nodal_field_interpolate_and_norms(medium_mesh):
    f = NodalField(medium_mesh, ncomp=1)
    f.interpolate(lambda c: c[:, 0])
    assert f.norm("max") == pytest.approx(1.0)
    assert f.norm("rms") <= f.norm("max")
    assert f.norm("l2") > 0
    with pytest.raises(ValueError, match="norm"):
        f.norm("l7")


def test_element_means(medium_mesh):
    f = NodalField(medium_mesh, ncomp=1).interpolate(lambda c: c[:, 2])
    means = f.element_means()
    cent = medium_mesh.element_coords().mean(axis=1)[:, 2]
    assert np.allclose(means, cent)


def test_element_field_to_nodal_constant(medium_mesh):
    ef = ElementField(medium_mesh, data=np.full(medium_mesh.nelem, 3.5))
    nodal = ef.to_nodal()
    assert np.allclose(nodal.data, 3.5)


def test_field_copy_independent(medium_mesh):
    f = NodalField(medium_mesh, ncomp=1)
    g = f.copy()
    g.data += 1.0
    assert np.allclose(f.data, 0.0)


def test_lumped_mass_sums_to_volume(medium_mesh):
    mass = lumped_mass(medium_mesh)
    assert mass.sum() == pytest.approx(medium_mesh.total_volume())
    assert (mass > 0).all()


def test_lumped_mass_jittered(jittered_mesh):
    mass = lumped_mass(jittered_mesh)
    assert mass.sum() == pytest.approx(jittered_mesh.total_volume())
