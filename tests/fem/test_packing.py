"""Element packing: group shapes, padding, scatter-add correctness."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fem import ElementPacking, box_tet_mesh, scatter_add


def test_group_count(medium_mesh):
    p = ElementPacking(medium_mesh, vector_dim=16)
    assert p.ngroups == -(-medium_mesh.nelem // 16)
    assert len(p) == p.ngroups


def test_padding(small_mesh):
    # 162 elements, vector_dim 100 -> 2 groups, 38 padding lanes
    p = ElementPacking(small_mesh, vector_dim=100)
    assert p.ngroups == 2
    assert p.npad == 2 * 100 - small_mesh.nelem
    last = p.group(p.ngroups - 1)
    assert last.nactive == small_mesh.nelem - 100
    assert not last.active[-1]
    # padding repeats the final real element
    assert (last.element_ids[last.nactive:] == last.element_ids[last.nactive - 1]).all()


def test_groups_cover_all_elements_once(medium_mesh):
    p = ElementPacking(medium_mesh, vector_dim=37)
    seen = np.concatenate([g.element_ids[g.active] for g in p])
    assert np.array_equal(np.sort(seen), np.arange(medium_mesh.nelem))


def test_group_coords_match_mesh(medium_mesh):
    p = ElementPacking(medium_mesh, vector_dim=8)
    g = p.group(3)
    assert np.allclose(
        g.coords, medium_mesh.coords[medium_mesh.connectivity[g.element_ids]]
    )


def test_gather_nodal(medium_mesh):
    p = ElementPacking(medium_mesh, vector_dim=8)
    g = p.group(0)
    field = np.arange(medium_mesh.nnode, dtype=float)
    gathered = g.gather_nodal(field)
    assert gathered.shape == (8, 4)
    assert np.allclose(gathered, g.connectivity.astype(float))


def test_permutation_changes_order_not_content(medium_mesh):
    rng = np.random.default_rng(1)
    perm = rng.permutation(medium_mesh.nelem)
    p = ElementPacking(medium_mesh, vector_dim=16, permutation=perm)
    seen = np.concatenate([g.element_ids[g.active] for g in p])
    assert np.array_equal(seen, perm)


def test_invalid_permutation(medium_mesh):
    with pytest.raises(ValueError, match="bijection"):
        ElementPacking(
            medium_mesh, 16, permutation=np.zeros(medium_mesh.nelem, dtype=int)
        )


def test_invalid_vector_dim(medium_mesh):
    with pytest.raises(ValueError, match="vector_dim"):
        ElementPacking(medium_mesh, 0)


def test_group_index_bounds(medium_mesh):
    p = ElementPacking(medium_mesh, vector_dim=16)
    with pytest.raises(IndexError):
        p.group(p.ngroups)


def test_scatter_add_handles_shared_nodes(small_mesh):
    """Lanes sharing nodes must all contribute (no lost updates)."""
    p = ElementPacking(small_mesh, vector_dim=small_mesh.nelem)
    g = p.group(0)
    rhs = np.zeros((small_mesh.nnode, 3))
    elemental = np.ones((g.vector_dim, 4, 3))
    scatter_add(rhs, g, elemental)
    # every node accumulates once per adjacent element
    offsets, _ = small_mesh.node_element_adjacency()
    counts = np.diff(offsets)
    assert np.allclose(rhs[:, 0], counts)


def test_scatter_add_masks_padding(small_mesh):
    p = ElementPacking(small_mesh, vector_dim=100)
    g = p.group(p.ngroups - 1)  # padded group
    rhs = np.zeros((small_mesh.nnode, 3))
    scatter_add(rhs, g, np.ones((100, 4, 3)))
    total = rhs[:, 0].sum()
    assert total == pytest.approx(4 * g.nactive)


def test_scatter_add_rejects_bad_shape(small_mesh):
    p = ElementPacking(small_mesh, vector_dim=8)
    with pytest.raises(ValueError, match="vector_dim"):
        scatter_add(np.zeros((small_mesh.nnode, 3)), p.group(0), np.ones((7, 4, 3)))


@settings(max_examples=20, deadline=None)
@given(vdim=st.integers(1, 200))
def test_any_vector_dim_covers_mesh(vdim):
    mesh = box_tet_mesh(2, 2, 2)
    p = ElementPacking(mesh, vector_dim=vdim)
    seen = np.concatenate([g.element_ids[g.active] for g in p])
    assert np.array_equal(np.sort(seen), np.arange(mesh.nelem))
    assert sum(g.nactive for g in p) == mesh.nelem
