"""AssemblyPlan: precomputed scatter, cached geometry, bit-identity.

The plan layer replaces every hot-loop ``np.add.at`` with a precomputed
``np.bincount`` reduction; both accumulate weights sequentially in input
order, so the results must be *bitwise* equal (``np.array_equal``, not
``allclose``) -- these tests pin that contract for the raw scatter
primitives, the DSL assembler, and every physics consumer.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import UnifiedAssembler
from repro.core.variants import variant_names
from repro.fem import (
    AssemblyPlan,
    ElementPacking,
    ScatterPlan,
    box_tet_mesh,
    get_plan,
    lumped_mass,
    segment_scatter,
)
from repro.fem.fields import ElementField
from repro.fem.geometry import tet4_gradients
from repro.physics import assemble_momentum_rhs
from repro.physics.momentum import element_rhs
from repro.physics.pressure import PressureSolver, divergence_rhs


# -- raw scatter primitives -------------------------------------------------------


@st.composite
def scatter_case(draw):
    nbins = draw(st.integers(min_value=1, max_value=40))
    nvals = draw(st.integers(min_value=0, max_value=200))
    idx = draw(
        st.lists(
            st.integers(min_value=0, max_value=nbins - 1),
            min_size=nvals,
            max_size=nvals,
        )
    )
    vals = draw(
        st.lists(
            st.floats(
                min_value=-1e6, max_value=1e6, allow_nan=False, width=64
            ),
            min_size=nvals,
            max_size=nvals,
        )
    )
    return nbins, np.asarray(idx, dtype=np.int64), np.asarray(vals)


@settings(max_examples=60, deadline=None)
@given(scatter_case())
def test_segment_scatter_bitwise_equals_add_at_1d(case):
    nbins, idx, vals = case
    ref = np.zeros(nbins)
    np.add.at(ref, idx, vals)
    got = segment_scatter(idx, vals, nbins)
    assert np.array_equal(ref, got)


@settings(max_examples=40, deadline=None)
@given(scatter_case(), st.integers(min_value=2, max_value=4))
def test_segment_scatter_bitwise_equals_add_at_2d(case, ncomp):
    nbins, idx, vals = case
    vals = np.stack([vals * (k + 1) for k in range(ncomp)], axis=-1)
    ref = np.zeros((nbins, ncomp))
    np.add.at(ref, idx, vals)
    got = segment_scatter(idx, vals, nbins)
    assert np.array_equal(ref, got)


@settings(max_examples=40, deadline=None)
@given(scatter_case())
def test_scatter_plan_bincount_bitwise(case):
    nbins, idx, vals = case
    plan = ScatterPlan(idx, nbins)
    ref = np.zeros(nbins)
    np.add.at(ref, idx, vals)
    assert np.array_equal(plan.scatter(vals), ref)


@settings(max_examples=40, deadline=None)
@given(scatter_case())
def test_scatter_plan_sort_strategy_close_and_deterministic(case):
    nbins, idx, vals = case
    plan = ScatterPlan(idx, nbins)
    ref = np.zeros(nbins)
    np.add.at(ref, idx, vals)
    a = plan.scatter(vals, strategy="sort")
    b = plan.scatter(vals, strategy="sort")
    # reduceat re-associates segment sums: deterministic, but only approx
    # equal to the sequential order.
    assert np.array_equal(a, b)
    assert np.allclose(a, ref, rtol=1e-12, atol=1e-12)


def test_scatter_plan_rejects_unknown_strategy():
    plan = ScatterPlan(np.array([0, 1, 1]), 2)
    with pytest.raises(ValueError, match="strategy"):
        plan.scatter(np.ones(3), strategy="atomic")


def test_duplicate_heavy_scatter_bitwise():
    # all values into one bin: worst case for any re-association
    rng = np.random.default_rng(0)
    vals = rng.standard_normal(4096) * 10.0 ** rng.integers(-8, 8, 4096)
    ref = np.zeros(1)
    np.add.at(ref, np.zeros(4096, dtype=np.int64), vals)
    got = segment_scatter(np.zeros(4096, dtype=np.int64), vals, 1)
    assert np.array_equal(ref, got)


# -- plan caching -----------------------------------------------------------------


def test_get_plan_is_cached(medium_mesh):
    assert get_plan(medium_mesh) is get_plan(medium_mesh)


def test_plan_geometry_matches_mesh(medium_mesh):
    plan = get_plan(medium_mesh)
    grads, dets = tet4_gradients(medium_mesh.element_coords())
    geo = plan.geometry()
    assert np.array_equal(geo.gradients, grads)
    assert np.array_equal(geo.dets, dets)
    assert np.array_equal(geo.volumes, dets / 6.0)
    assert geo is plan.geometry()  # cached


def test_plan_element_volumes_are_mesh_volumes(medium_mesh):
    # cross-product volumes (mesh path), NOT det/6 -- the two differ in
    # the last ulp and downstream consumers depend on the mesh flavour.
    plan = get_plan(medium_mesh)
    assert np.array_equal(plan.element_volumes(), medium_mesh.element_volumes())


def test_plan_arrays_are_readonly(medium_mesh):
    plan = get_plan(medium_mesh)
    for arr in (
        plan.geometry().gradients,
        plan.geometry().volumes,
        plan.element_volumes(),
        plan.lumped_mass(),
        plan.packed_coords(),
    ):
        assert not arr.flags.writeable


def test_plan_invalidated_by_fix_orientation():
    mesh = box_tet_mesh(3, 3, 3)
    before = get_plan(mesh)
    assert get_plan(mesh) is before
    # break one element's orientation, then repair it: the repair bumps the
    # mesh version and must retire the cached plan
    with mesh.mutate():
        mesh._connectivity[0, [1, 2]] = mesh._connectivity[0, [2, 1]].copy()
    assert mesh.fix_orientation() == 1
    after = get_plan(mesh)
    assert after is not before
    assert get_plan(mesh) is after


def test_plan_packing_cached_per_signature(medium_mesh):
    plan = get_plan(medium_mesh)
    perm = np.random.default_rng(5).permutation(medium_mesh.nelem)
    assert plan.packing(16) is plan.packing(16)
    assert plan.packing(16) is not plan.packing(32)
    assert plan.packing(16, permutation=perm) is plan.packing(16, permutation=perm)
    assert plan.packing(16, permutation=perm) is not plan.packing(16)


def test_plan_lumped_mass_bitwise(medium_mesh):
    vols = medium_mesh.element_volumes()
    ref = np.zeros(medium_mesh.nnode)
    np.add.at(ref, medium_mesh.connectivity.ravel(), np.repeat(vols / 4.0, 4))
    assert np.array_equal(get_plan(medium_mesh).lumped_mass(), ref)
    assert np.array_equal(lumped_mass(medium_mesh), ref)
    # the public helper still honours the mutable-copy contract
    out = lumped_mass(medium_mesh)
    out[0] = -1.0
    assert lumped_mass(medium_mesh)[0] == ref[0]


# -- packing memoization ----------------------------------------------------------


def test_packing_full_groups_share_active_mask(medium_mesh):
    p = ElementPacking(medium_mesh, vector_dim=16)
    g0, g1 = p.group(0), p.group(1)
    assert g0.active is g1.active
    assert not g0.active.flags.writeable


def test_packing_final_padded_group_memoized(small_mesh):
    p = ElementPacking(small_mesh, vector_dim=100)  # 162 elems -> padded
    last = p.ngroups - 1
    assert p.group(last) is p.group(last)
    # uncached packing still rebuilds full groups
    assert p.group(0) is not p.group(0)


def test_packing_cache_memoizes_every_group(small_mesh):
    p = ElementPacking(small_mesh, vector_dim=16, cache=True)
    for i in range(p.ngroups):
        assert p.group(i) is p.group(i)


def test_cached_packing_groups_match_uncached(small_mesh):
    rng = np.random.default_rng(2)
    perm = rng.permutation(small_mesh.nelem)
    a = ElementPacking(small_mesh, vector_dim=32, permutation=perm, cache=True)
    b = ElementPacking(small_mesh, vector_dim=32, permutation=perm)
    for ga, gb in zip(a, b):
        assert np.array_equal(ga.element_ids, gb.element_ids)
        assert np.array_equal(ga.connectivity, gb.connectivity)
        assert np.array_equal(ga.coords, gb.coords)
        assert np.array_equal(ga.active, gb.active)


# -- end-to-end bit-identity ------------------------------------------------------


@pytest.mark.parametrize("variant", variant_names())
def test_unified_plan_path_bitwise_equals_legacy(variant, medium_mesh, params):
    rng = np.random.default_rng(11)
    u = 0.1 * rng.standard_normal((medium_mesh.nnode, 3))
    planned = UnifiedAssembler(medium_mesh, params, vector_dim=16)
    legacy = UnifiedAssembler(
        medium_mesh, params, vector_dim=16, use_plan=False
    )
    assert planned.plan is not None and legacy.plan is None
    r1 = planned.assemble(variant, u)
    r0 = legacy.assemble(variant, u)
    assert np.array_equal(r1, r0)
    # second sweep reuses the recorded scatter pattern -- still identical
    assert np.array_equal(planned.assemble(variant, u), r0)


@pytest.mark.parametrize("vector_dim", [7, 100, 4096])
def test_unified_plan_path_bitwise_with_padding(vector_dim, small_mesh, params):
    # 162 elements: every vector_dim here leaves padding lanes in the
    # final group, which the deferred scatter must route to the trash bin
    rng = np.random.default_rng(3)
    u = 0.1 * rng.standard_normal((small_mesh.nnode, 3))
    planned = UnifiedAssembler(small_mesh, params, vector_dim=vector_dim)
    legacy = UnifiedAssembler(
        small_mesh, params, vector_dim=vector_dim, use_plan=False
    )
    for variant in variant_names():
        assert np.array_equal(
            planned.assemble(variant, u), legacy.assemble(variant, u)
        )


def test_unified_plan_path_bitwise_with_permutation(small_mesh, params):
    rng = np.random.default_rng(4)
    u = 0.1 * rng.standard_normal((small_mesh.nnode, 3))
    perm = rng.permutation(small_mesh.nelem)
    planned = UnifiedAssembler(
        small_mesh, params, vector_dim=16, permutation=perm
    )
    legacy = UnifiedAssembler(
        small_mesh, params, vector_dim=16, permutation=perm, use_plan=False
    )
    for variant in variant_names():
        assert np.array_equal(
            planned.assemble(variant, u), legacy.assemble(variant, u)
        )


def test_momentum_assembly_bitwise_equals_seed_path(medium_mesh, params):
    rng = np.random.default_rng(12)
    u = 0.1 * rng.standard_normal((medium_mesh.nnode, 3))
    elem = element_rhs(
        medium_mesh.element_coords(), u[medium_mesh.connectivity], params
    )
    ref = np.zeros((medium_mesh.nnode, 3))
    np.add.at(ref, medium_mesh.connectivity.ravel(), elem.reshape(-1, 3))
    assert np.array_equal(assemble_momentum_rhs(medium_mesh, u, params), ref)


def test_divergence_rhs_bitwise_equals_seed_path(medium_mesh):
    rng = np.random.default_rng(13)
    u = rng.standard_normal((medium_mesh.nnode, 3))
    grads, dets = tet4_gradients(medium_mesh.element_coords())
    vols = dets / 6.0
    div = np.einsum("eai,eai->e", grads, u[medium_mesh.connectivity])
    contrib = -(1.2 / 0.05) * (vols * div) / 4.0
    ref = np.zeros(medium_mesh.nnode)
    np.add.at(ref, medium_mesh.connectivity.ravel(), np.repeat(contrib, 4))
    assert np.array_equal(divergence_rhs(medium_mesh, u, 1.2, 0.05), ref)


def test_pressure_gradient_bitwise_equals_seed_path(medium_mesh):
    rng = np.random.default_rng(14)
    p = rng.standard_normal(medium_mesh.nnode)
    grads, dets = tet4_gradients(medium_mesh.element_coords())
    vols = dets / 6.0
    gp = np.einsum("eai,ea->ei", grads, p[medium_mesh.connectivity])
    contrib = (vols / 4.0)[:, None, None] * gp[:, None, :].repeat(4, axis=1)
    acc = np.zeros((medium_mesh.nnode, 3))
    np.add.at(acc, medium_mesh.connectivity.ravel(), contrib.reshape(-1, 3))
    ref = acc / lumped_mass(medium_mesh)[:, None]
    solver = PressureSolver(medium_mesh, use_amg=False)
    assert np.array_equal(solver.pressure_gradient(p), ref)


def test_to_nodal_bitwise_equals_seed_path(medium_mesh):
    rng = np.random.default_rng(15)
    data = rng.standard_normal((medium_mesh.nelem, 3))
    vols = medium_mesh.element_volumes()
    contrib = (data * vols[:, None])[:, None, :].repeat(4, axis=1)
    acc = np.zeros((medium_mesh.nnode, 3))
    wsum = np.zeros(medium_mesh.nnode)
    np.add.at(acc, medium_mesh.connectivity.ravel(), contrib.reshape(-1, 3))
    np.add.at(wsum, medium_mesh.connectivity.ravel(), np.repeat(vols, 4))
    ref = acc / np.maximum(wsum, 1e-300)[:, None]
    got = ElementField(medium_mesh, ncomp=3, data=data).to_nodal()
    assert np.array_equal(np.asarray(got), ref)


# -- deferred accumulator internals ----------------------------------------------


def test_accumulator_pattern_reused_across_assemblies(small_mesh, params):
    plan = AssemblyPlan(small_mesh)
    asm = UnifiedAssembler(small_mesh, params, vector_dim=16)
    asm.plan = plan  # isolate pattern bookkeeping from the shared cache
    asm.packing = plan.packing(16)
    u = np.zeros((small_mesh.nnode, 3))
    asm.assemble("B", u)
    assert len(plan._patterns) == 1
    asm.assemble("B", u)
    assert len(plan._patterns) == 1  # reused, not rebuilt
    asm.assemble("RSP", u)
    assert len(plan._patterns) == 2  # separate key per variant


def test_accumulator_rejects_out_of_order_reuse(small_mesh):
    plan = AssemblyPlan(small_mesh)
    packing = plan.packing(16)
    groups = list(packing)
    acc = plan.accumulator(key=("t", 16, None))
    for g in groups:
        acc.begin_group(g)
        acc.add(0, 0, np.ones(g.vector_dim))
    acc.finalize(np.zeros((small_mesh.nnode, 3)))
    acc2 = plan.accumulator(key=("t", 16, None))
    acc2.begin_group(groups[0])
    acc2.add(1, 0, np.ones(groups[0].vector_dim))  # different slot
    with pytest.raises(RuntimeError, match="scatter pattern"):
        acc2.finalize(np.zeros((small_mesh.nnode, 3)))
