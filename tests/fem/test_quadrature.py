"""Quadrature rules: weight sums, polynomial exactness (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fem.quadrature import available_rules, rule_for
from repro.fem.reference import element

ALL = [
    (name, ng) for name in ("TET04", "HEX08", "PEN06", "PYR05")
    for ng in available_rules(name)
]


@pytest.mark.parametrize("name,ngauss", ALL)
def test_weights_sum_to_reference_volume(name, ngauss):
    rule = rule_for(name, ngauss)
    assert rule.weights.sum() == pytest.approx(
        element(name).reference_volume, rel=1e-12
    )


@pytest.mark.parametrize("name,ngauss", ALL)
def test_points_inside_reference_element(name, ngauss):
    rule = rule_for(name, ngauss)
    p = rule.points
    if name == "TET04":
        # allow slightly-outside points for negative-weight rules? no: all in
        assert (p >= -1e-12).all()
        assert (p.sum(axis=1) <= 1 + 1e-12).all()
    elif name == "HEX08":
        assert (np.abs(p) <= 1 + 1e-12).all()


def _monomial_integral_tet(i, j, k):
    """int_T s^i t^j u^k over the unit tet = i! j! k! / (i+j+k+3)!"""
    from math import factorial

    return (
        factorial(i) * factorial(j) * factorial(k)
        / factorial(i + j + k + 3)
    )


@pytest.mark.parametrize("ngauss", available_rules("TET04"))
def test_tet_polynomial_exactness(ngauss):
    rule = rule_for("TET04", ngauss)
    for i in range(rule.degree + 1):
        for j in range(rule.degree + 1 - i):
            for k in range(rule.degree + 1 - i - j):
                vals = (
                    rule.points[:, 0] ** i
                    * rule.points[:, 1] ** j
                    * rule.points[:, 2] ** k
                )
                got = float((vals * rule.weights).sum())
                assert got == pytest.approx(
                    _monomial_integral_tet(i, j, k), rel=1e-10, abs=1e-14
                ), (i, j, k)


@pytest.mark.parametrize("ngauss", available_rules("HEX08"))
def test_hex_polynomial_exactness(ngauss):
    rule = rule_for("HEX08", ngauss)
    for i in range(rule.degree + 1):
        exact = 0.0 if i % 2 else 2.0 / (i + 1)
        for axis in range(3):
            vals = rule.points[:, axis] ** i
            got = float((vals * rule.weights).sum()) / 4.0  # /(2*2) others
            assert got == pytest.approx(exact, rel=1e-12, abs=1e-13)


@settings(max_examples=30, deadline=None)
@given(
    coeffs=st.lists(
        st.floats(-2, 2, allow_nan=False), min_size=4, max_size=4
    )
)
def test_tet4_rule_integrates_random_quadratics(coeffs):
    """The paper's 4-point rule (degree 2) integrates any quadratic in s."""
    rule = rule_for("TET04", 4)
    a, b, c, d = coeffs
    s, t, u = rule.points.T
    vals = a + b * s + c * s * t + d * u * u
    got = float((vals * rule.weights).sum())
    exact = (
        a * _monomial_integral_tet(0, 0, 0)
        + b * _monomial_integral_tet(1, 0, 0)
        + c * _monomial_integral_tet(1, 1, 0)
        + d * _monomial_integral_tet(0, 0, 2)
    )
    assert got == pytest.approx(exact, rel=1e-10, abs=1e-12)


def test_default_rule_matches_alya_choice():
    """ngauss defaults to nnode (4 for TET04 -- the specialized constants)."""
    assert rule_for("TET04").ngauss == 4
    assert rule_for("HEX08").ngauss == 8


def test_integrate_helper():
    rule = rule_for("TET04", 4)
    ones = np.ones(rule.ngauss)
    assert rule.integrate(ones) == pytest.approx(1.0 / 6.0)
    batch = np.ones((5, rule.ngauss))
    assert rule.integrate(batch).shape == (5,)


def test_unknown_rule_raises():
    with pytest.raises(KeyError, match="no 7-point rule"):
        rule_for("TET04", 7)
    with pytest.raises(KeyError, match="catalogue"):
        rule_for("TRI03")
