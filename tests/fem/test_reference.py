"""Reference-element properties: partition of unity, nodal interpolation,
gradient consistency."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fem.reference import ELEMENTS, TET04, TET04_GRAD, element

ALL_NAMES = sorted(ELEMENTS)


def _interior_points(ref, n=5, seed=0):
    """Random points safely inside the reference element."""
    rng = np.random.default_rng(seed)
    if ref.name == "TET04":
        b = rng.dirichlet(np.ones(4), size=n)
        return b[:, 1:] * 0.9
    if ref.name == "HEX08":
        return rng.uniform(-0.9, 0.9, size=(n, 3))
    if ref.name == "PEN06":
        b = rng.dirichlet(np.ones(3), size=n) * 0.9
        u = rng.uniform(-0.9, 0.9, size=n)
        return np.column_stack([b[:, 1], b[:, 2], u])
    if ref.name == "PYR05":
        u = rng.uniform(0.0, 0.8, size=n)
        s = rng.uniform(-0.9, 0.9, size=n) * (1 - u)
        t = rng.uniform(-0.9, 0.9, size=n) * (1 - u)
        return np.column_stack([s, t, u])
    raise AssertionError(ref.name)


@pytest.mark.parametrize("name", ALL_NAMES)
def test_partition_of_unity(name):
    ref = element(name)
    vals, _ = ref.evaluate(_interior_points(ref))
    assert np.allclose(vals.sum(axis=0), 1.0, atol=1e-12)


@pytest.mark.parametrize("name", ALL_NAMES)
def test_gradient_sum_zero(name):
    """d/dx of the partition of unity: gradients sum to zero."""
    ref = element(name)
    _, grads = ref.evaluate(_interior_points(ref))
    assert np.allclose(grads.sum(axis=0), 0.0, atol=1e-12)


@pytest.mark.parametrize("name", ALL_NAMES)
def test_nodal_interpolation(name):
    """N_a(x_b) = delta_ab."""
    ref = element(name)
    vals, _ = ref.evaluate(ref.node_coords)
    assert np.allclose(vals, np.eye(ref.nnode), atol=1e-12)


@pytest.mark.parametrize("name", ALL_NAMES)
def test_gradients_match_finite_differences(name):
    ref = element(name)
    pts = _interior_points(ref, n=3, seed=1)
    _, grads = ref.evaluate(pts)
    eps = 1e-6
    for d in range(3):
        plus = pts.copy()
        plus[:, d] += eps
        minus = pts.copy()
        minus[:, d] -= eps
        vp, _ = ref.evaluate(plus)
        vm, _ = ref.evaluate(minus)
        fd = (vp - vm) / (2 * eps)
        assert np.allclose(grads[:, d, :], fd, atol=1e-6)


@pytest.mark.parametrize("name", ALL_NAMES)
def test_linear_completeness(name):
    """Shape functions reproduce linear fields exactly at interior points."""
    ref = element(name)
    pts = _interior_points(ref, n=4, seed=2)
    coeff = np.array([0.3, -1.2, 0.7])
    nodal = ref.node_coords @ coeff + 2.0
    vals, _ = ref.evaluate(pts)
    interp = nodal @ vals
    exact = pts @ coeff + 2.0
    assert np.allclose(interp, exact, atol=1e-10)


def test_tet04_constant_gradient_matrix():
    _, grads = TET04.evaluate(np.array([[0.1, 0.2, 0.3], [0.3, 0.1, 0.2]]))
    assert np.allclose(grads[:, :, 0], TET04_GRAD)
    assert np.allclose(grads[:, :, 1], TET04_GRAD)
    assert TET04.linear_gradient


@pytest.mark.parametrize("name", [n for n in ALL_NAMES if n != "TET04"])
def test_only_tet_has_constant_gradients(name):
    assert not element(name).linear_gradient


def test_element_lookup_case_insensitive():
    assert element("tet04") is TET04


def test_element_lookup_unknown():
    with pytest.raises(KeyError, match="unknown element"):
        element("TET10")


def test_evaluate_rejects_wrong_dim():
    with pytest.raises(ValueError, match="dim"):
        TET04.evaluate(np.zeros((3, 2)))


@settings(max_examples=25, deadline=None)
@given(
    s=st.floats(0.01, 0.3),
    t=st.floats(0.01, 0.3),
    u=st.floats(0.01, 0.3),
)
def test_tet_shapes_nonnegative_inside(s, t, u):
    vals, _ = TET04.evaluate(np.array([[s, t, u]]))
    assert (vals >= 0).all()
    assert vals.sum() == pytest.approx(1.0)
