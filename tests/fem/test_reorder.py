"""Locality reordering: SFC keys, RCM, and the bit-consistency contract."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import UnifiedAssembler
from repro.fem import (
    STRATEGIES,
    TetMesh,
    bandwidth_stats,
    box_tet_mesh,
    get_plan,
    perturbed_box_mesh,
    rcm_node_permutation,
    reorder_mesh,
)
from repro.fem.reorder import element_order, hilbert_keys, morton_keys
from repro.physics import AssemblyParams, assemble_momentum_rhs


# -- SFC keys ----------------------------------------------------------------


def test_morton_keys_interleave_bits():
    # (x=3, y=5, z=7): key bit 3k+axis is bit k of that axis
    key = int(morton_keys(np.array([[3, 5, 7]]))[0])
    expected = 0
    for k in range(3):
        expected |= ((3 >> k) & 1) << (3 * k)
        expected |= ((5 >> k) & 1) << (3 * k + 1)
        expected |= ((7 >> k) & 1) << (3 * k + 2)
    assert key == expected


def test_hilbert_curve_visits_face_adjacent_cells():
    """Consecutive cells along the curve differ by exactly one grid step --
    the locality property Morton order lacks (its jumps across octants)."""
    bits = 3
    side = 1 << bits
    g = np.stack(
        np.meshgrid(*([np.arange(side)] * 3), indexing="ij"), axis=-1
    ).reshape(-1, 3)
    keys = hilbert_keys(g, bits)
    assert len(np.unique(keys)) == len(keys)  # a bijection on the grid
    walk = g[np.argsort(keys)]
    steps = np.abs(np.diff(walk.astype(np.int64), axis=0)).sum(axis=1)
    assert (steps == 1).all()


def test_element_order_is_permutation_and_deterministic(medium_mesh):
    for strategy in ("morton", "hilbert"):
        order = element_order(medium_mesh, strategy)
        assert np.array_equal(np.sort(order), np.arange(medium_mesh.nelem))
        assert np.array_equal(order, element_order(medium_mesh, strategy))


def test_element_order_rejects_unknown_strategy(small_mesh):
    with pytest.raises(ValueError, match="SFC strategy"):
        element_order(small_mesh, "peano")


# -- RCM ---------------------------------------------------------------------


def _scrambled(mesh, seed=0):
    """The mesh with its node numbering randomly permuted."""
    rng = np.random.default_rng(seed)
    perm = rng.permutation(mesh.nnode)
    inverse = np.empty_like(perm)
    inverse[perm] = np.arange(mesh.nnode)
    return TetMesh(mesh.coords[inverse], perm[mesh.connectivity])


def test_rcm_shrinks_scrambled_bandwidth(medium_mesh):
    """RCM must recover a banded numbering from a scrambled one.  (The
    structured box's natural numbering is already near-optimally banded,
    so the scrambled mesh is the honest starting point.)"""
    scrambled = _scrambled(medium_mesh, seed=3)
    max_before, mean_before = bandwidth_stats(scrambled)
    res = reorder_mesh(scrambled, "rcm")
    max_after, mean_after = bandwidth_stats(res.mesh)
    assert max_after < 0.5 * max_before
    assert mean_after < 0.5 * mean_before


def test_rcm_permutation_is_valid(jittered_mesh):
    perm = rcm_node_permutation(jittered_mesh)
    assert np.array_equal(np.sort(perm), np.arange(jittered_mesh.nnode))


# -- reorder_mesh ------------------------------------------------------------


def test_reorder_preserves_geometry(jittered_mesh):
    for strategy in STRATEGIES:
        res = reorder_mesh(jittered_mesh, strategy)
        assert res.mesh.nelem == jittered_mesh.nelem
        assert res.mesh.nnode == jittered_mesh.nnode
        # same element volumes element-by-element after mapping back
        vols = res.to_seed_elemental(res.mesh.element_volumes())
        assert np.array_equal(vols, jittered_mesh.element_volumes())


def test_reorder_nodal_roundtrip_is_bitwise(jittered_mesh):
    rng = np.random.default_rng(8)
    f = rng.standard_normal((jittered_mesh.nnode, 3))
    res = reorder_mesh(jittered_mesh, "hilbert+rcm")
    assert np.array_equal(res.to_seed_nodal(res.to_reordered_nodal(f)), f)


def test_seed_element_ids_compose_through_chains(jittered_mesh):
    first = reorder_mesh(jittered_mesh, "morton")
    second = reorder_mesh(first.mesh, "rcm")
    third = reorder_mesh(second.mesh, "hilbert")
    ids = third.mesh.seed_element_ids
    assert np.array_equal(np.sort(ids), np.arange(jittered_mesh.nelem))
    # position k of the third mesh must trace back to the original element
    direct = first.element_perm[second.element_perm][third.element_perm]
    assert np.array_equal(ids, direct)


def test_mesh_reordered_method(jittered_mesh):
    res = jittered_mesh.reordered("hilbert")
    assert res.strategy == "hilbert"
    assert res.mesh is not jittered_mesh


def test_reorder_rejects_unknown_strategy(small_mesh):
    with pytest.raises(ValueError, match="strategy"):
        reorder_mesh(small_mesh, "zigzag")


# -- bit-consistent assembly -------------------------------------------------


@settings(max_examples=20, deadline=None)
@given(
    strategy=st.sampled_from([s for s in STRATEGIES if s != "none"]),
    variant=st.sampled_from(["B", "P", "RS", "RSP", "RSPR"]),
    mode=st.sampled_from(["interpreted", "compiled"]),
    seed=st.integers(0, 50),
)
def test_property_reordered_assembly_bitwise(strategy, variant, mode, seed):
    """The tentpole contract: assembling on any reordered mesh and mapping
    the RHS back through the inverse permutation reproduces the seed-order
    assembly to the last bit, for every variant and both backends."""
    mesh = perturbed_box_mesh(3, 3, 4, amplitude=0.08, seed=seed % 5)
    params = AssemblyParams(body_force=(0.05, -0.1, 0.2))
    rng = np.random.default_rng(seed)
    u = 0.1 * rng.standard_normal((mesh.nnode, 3))
    seed_rhs = UnifiedAssembler(
        mesh, params, vector_dim=16, mode=mode
    ).assemble(variant, u)
    res = mesh.reordered(strategy)
    new_rhs = UnifiedAssembler(
        res.mesh, params, vector_dim=16, mode=mode
    ).assemble(variant, res.to_reordered_nodal(u))
    assert np.array_equal(res.to_seed_nodal(new_rhs), seed_rhs)


def test_reordered_reference_assembly_matches_to_tolerance(jittered_mesh):
    """The reference path has no seed-order flush; mapping back agrees to
    rounding only -- documents why the deferred-scatter contract matters."""
    params = AssemblyParams(body_force=(0.0, 0.0, 0.1))
    rng = np.random.default_rng(2)
    u = 0.1 * rng.standard_normal((jittered_mesh.nnode, 3))
    res = jittered_mesh.reordered("hilbert+rcm")
    a = assemble_momentum_rhs(jittered_mesh, u, params)
    b = res.to_seed_nodal(
        assemble_momentum_rhs(res.mesh, res.to_reordered_nodal(u), params)
    )
    assert np.allclose(a, b, atol=1e-13)


# -- stale-pattern protection ------------------------------------------------


def test_stale_scatter_pattern_never_replays_after_renumbering(params):
    """Satellite regression: renumbering the nodes through ``mutate()``
    bumps the mesh version, so an assembler built earlier must rebuild its
    plan/patterns instead of scattering against the old numbering."""
    mesh = box_tet_mesh(3, 3, 3)
    rng = np.random.default_rng(4)
    u = 0.1 * rng.standard_normal((mesh.nnode, 3))
    asm = UnifiedAssembler(mesh, params, vector_dim=16, mode="compiled")
    before = asm.assemble("RS", u)
    old_plan = get_plan(mesh)

    swap = [0, 1]
    remap = np.arange(mesh.nnode)
    remap[swap] = swap[::-1]
    with mesh.mutate():
        mesh._coords[swap] = mesh._coords[swap[::-1]].copy()
        mesh._connectivity[...] = remap[mesh._connectivity]

    assert get_plan(mesh) is not old_plan
    u2 = u.copy()
    u2[swap] = u2[swap[::-1]]
    after = asm.assemble("RS", u2)
    expected = before.copy()
    expected[swap] = expected[swap[::-1]]
    # a stale pattern would scatter into the old node rows; the node-only
    # renumbering preserves per-node contribution order, so the correct
    # result is the bitwise-permuted RHS
    assert np.array_equal(after, expected)


def test_mesh_arrays_frozen_outside_mutate(small_mesh):
    with pytest.raises(ValueError):
        small_mesh.connectivity[0, 0] = 0
    with pytest.raises(ValueError):
        small_mesh.coords[0, 0] = 99.0
