"""VTK writer and paper-comparison reports."""

import numpy as np
import pytest

from repro.io import (
    PAPER_TABLE1,
    PAPER_TABLE2,
    comparison_table_cpu,
    comparison_table_gpu,
    write_vtk,
)
from repro.machine.counters import format_table


def test_write_vtk_roundtrip(tmp_path, small_mesh):
    path = tmp_path / "out.vtk"
    u = np.random.default_rng(0).standard_normal((small_mesh.nnode, 3))
    p = np.arange(small_mesh.nnode, dtype=float)
    q = np.ones(small_mesh.nelem)
    write_vtk(str(path), small_mesh, point_data={"u": u, "p": p},
              cell_data={"q": q})
    text = path.read_text()
    assert f"POINTS {small_mesh.nnode} double" in text
    assert f"CELLS {small_mesh.nelem} {small_mesh.nelem * 5}" in text
    assert "VECTORS u double" in text
    assert "SCALARS p double 1" in text
    assert "CELL_DATA" in text
    assert text.count("\n10\n") >= 1  # tet cell type


def test_write_vtk_validates_shapes(tmp_path, small_mesh):
    with pytest.raises(ValueError, match="leading dim"):
        write_vtk(
            str(tmp_path / "x.vtk"), small_mesh,
            point_data={"bad": np.zeros(3)},
        )
    with pytest.raises(ValueError, match="must be"):
        write_vtk(
            str(tmp_path / "y.vtk"), small_mesh,
            point_data={"bad": np.zeros((small_mesh.nnode, 2))},
        )


def test_paper_tables_complete():
    assert set(PAPER_TABLE1) == {"B", "RS", "RSP"}
    assert set(PAPER_TABLE2) == {"B", "P", "RS", "RSP", "RSPR"}
    # spot values from the paper
    assert PAPER_TABLE2["RSPR"].get("runtime_ms") == 51
    assert PAPER_TABLE1["B"].get("runtime_1c_ms") == 44047


def test_comparison_tables_render():
    from repro.core import OptimizationStudy

    study = OptimizationStudy()
    g = comparison_table_gpu(study.gpu_table(["RS"]))
    assert "RS" in g and "/" in g
    c = comparison_table_cpu(study.cpu_table(["RS"]))
    assert "RS" in c


def test_format_table_alignment():
    rows = [{"a": 1.23456, "b": "x"}, {"a": 2.0, "b": "longer"}]
    out = format_table(rows, ["a", "b"], title="T")
    lines = out.splitlines()
    assert lines[0] == "T"
    assert len({len(l) for l in lines[1:]}) <= 2  # aligned
