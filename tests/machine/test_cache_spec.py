"""Cache simulators and machine specs."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine import (
    A100_SXM4_40GB,
    ICELAKE_8360Y,
    LruCache,
    SetAssociativeCache,
)


# -- LRU ---------------------------------------------------------------------


def test_lru_hits_within_capacity():
    c = LruCache(4)
    for ln in range(4):
        assert not c.access(ln)
    for ln in range(4):
        assert c.access(ln)
    assert c.stats.hit_rate == pytest.approx(0.5)


def test_lru_evicts_least_recent():
    c = LruCache(2)
    c.access(1)
    c.access(2)
    c.access(1)  # refresh 1
    c.access(3)  # evicts 2
    assert c.contains(1) and c.contains(3) and not c.contains(2)


def test_lru_writeback_on_dirty_eviction():
    evicted = []
    c = LruCache(1, on_evict=lambda ln, d: evicted.append((ln, d)))
    c.access(1, store=True)
    c.access(2)
    assert evicted == [(1, True)]
    assert c.stats.writebacks == 1


def test_lru_invalidate_drops_without_writeback():
    c = LruCache(4)
    c.access(1, store=True)
    assert c.invalidate([1, 99]) == 1
    assert c.stats.invalidated_dirty == 1
    assert c.stats.writebacks == 0
    assert not c.contains(1)


def test_lru_weighted_capacity():
    c = LruCache(16)
    c.access(1, weight=8)
    c.access(2, weight=8)
    assert len(c) == 2 and c.weight == 16
    c.access(3, weight=8)  # evicts 1
    assert not c.contains(1)
    assert c.weight == 16


def test_lru_weight_units_statistics():
    c = LruCache(100)
    c.access(1, weight=8)
    c.access(1, weight=8)
    assert c.stats.miss_units == 8
    assert c.stats.hit_units == 8


def test_lru_flush():
    c = LruCache(8)
    c.access(1, store=True)
    c.access(2)
    assert c.flush() == 1
    assert len(c) == 0


def test_lru_dirty_weight():
    c = LruCache(100)
    c.access(1, store=True, weight=4)
    c.access(2, weight=4)
    assert c.dirty_weight() == 4


def test_lru_rejects_zero_capacity():
    with pytest.raises(ValueError):
        LruCache(0)


@settings(max_examples=20, deadline=None)
@given(
    accesses=st.lists(st.integers(0, 10), min_size=1, max_size=200),
    cap=st.integers(1, 8),
)
def test_lru_inclusion_property(accesses, cap):
    """A bigger LRU cache never misses where a smaller one hits (inclusion)."""
    small = LruCache(cap)
    big = LruCache(cap * 2)
    for a in accesses:
        hit_small = small.access(a)
        hit_big = big.access(a)
        assert not (hit_small and not hit_big)


@settings(max_examples=20, deadline=None)
@given(accesses=st.lists(st.integers(0, 30), min_size=1, max_size=100))
def test_lru_capacity_never_exceeded(accesses):
    c = LruCache(5)
    for a in accesses:
        c.access(a)
        assert c.weight <= 5


# -- set associative ------------------------------------------------------------


def test_set_associative_conflict_misses():
    """Same-set lines thrash a 1-way cache but not a full LRU of equal size."""
    sa = SetAssociativeCache(capacity_lines=4, ways=1)
    fa = LruCache(4)
    pattern = [0, 4, 0, 4, 0, 4]  # map to the same set (4 sets)
    for ln in pattern:
        sa.access(ln)
        fa.access(ln)
    assert sa.stats.hits == 0  # pure conflict misses
    assert fa.stats.hits == 4


def test_set_associative_basics():
    c = SetAssociativeCache(capacity_lines=8, ways=2)
    c.access(0, store=True)
    assert c.contains(0)
    assert c.invalidate([0]) == 1
    c.access(1, store=True)
    assert c.flush() == 1
    with pytest.raises(ValueError):
        SetAssociativeCache(1, ways=4)


# -- specs ------------------------------------------------------------------------


def test_a100_machine_intensity():
    """The paper: machine intensity ~7 Flop/B on the A100."""
    assert A100_SXM4_40GB.machine_intensity == pytest.approx(7.02, abs=0.1)


def test_icelake_machine_intensity():
    """The paper: ~15 Flop/B on one Icelake socket."""
    assert ICELAKE_8360Y.machine_intensity == pytest.approx(15.1, abs=0.3)


@pytest.mark.parametrize(
    "regs,expected_warps",
    [(255, 8), (184, 8), (148, 12), (128, 16), (64, 32), (32, 64)],
)
def test_occupancy_vs_registers(regs, expected_warps):
    """Reproduces the paper's occupancy data incl. the +33% step 148->128."""
    assert A100_SXM4_40GB.warps_for_registers(regs) == expected_warps


def test_turbo_bins():
    """Figure 2's frequency kinks: 3.4 GHz to 17 cores, 3.1, then 2.6."""
    f = ICELAKE_8360Y.frequency
    assert f(1) == pytest.approx(3.4e9)
    assert f(17) == pytest.approx(3.4e9)
    assert f(18) == pytest.approx(3.1e9)
    assert f(24) == pytest.approx(3.1e9)
    assert f(25) == pytest.approx(2.6e9)
    assert f(36) == pytest.approx(2.6e9)


def test_cpu_core_shares():
    assert ICELAKE_8360Y.total_cores == 72
    assert ICELAKE_8360Y.core_fp_peak * 36 == pytest.approx(2705e9)
