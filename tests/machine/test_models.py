"""GPU/CPU execution models: the paper's Table I/II shapes."""

import pytest

from repro.core import OptimizationStudy
from repro.core.storage import Storage
from repro.machine import CpuModel, GpuModel
from repro.machine.gpu import _private_liveness_peak
from repro.machine.traffic import cold_mesh_dram_bytes


@pytest.fixture(scope="module")
def study():
    return OptimizationStudy()


@pytest.fixture(scope="module")
def gpu_table(study):
    return {c.variant: c for c in study.gpu_table()}


@pytest.fixture(scope="module")
def cpu_table(study):
    return {c.variant: c for c in study.cpu_table()}


# -- GPU registers / occupancy (Table II rows) ----------------------------------


def test_registers_match_paper(gpu_table):
    """Fitted register model reproduces Table II: 255/255/184/148/128."""
    assert gpu_table["B"].registers == 255
    assert gpu_table["P"].registers == 255
    assert gpu_table["RS"].registers == 184
    assert gpu_table["RSP"].registers == 148
    assert gpu_table["RSPR"].registers == 128


def test_occupancy_step_rsp_to_rspr(gpu_table):
    """The paper's +33% occupancy from the second restructuring."""
    w_rsp = gpu_table["RSP"].warps_per_sm
    w_rspr = gpu_table["RSPR"].warps_per_sm
    assert w_rspr / w_rsp == pytest.approx(4.0 / 3.0)


def test_gpu_runtime_ordering(gpu_table):
    t = {v: c.runtime_ms for v, c in gpu_table.items()}
    assert t["B"] > t["P"] > t["RS"] > t["RSP"] > t["RSPR"]


def test_gpu_headline_speedup(gpu_table):
    """The paper's headline: the final GPU version is >50x the baseline."""
    assert gpu_table["B"].runtime_ms / gpu_table["RSPR"].runtime_ms > 50.0


def test_privatization_speedup_about_2x(gpu_table):
    """Paper: P alone gives 'more than 2x' (we accept 1.3-3x)."""
    ratio = gpu_table["B"].runtime_ms / gpu_table["P"].runtime_ms
    assert 1.3 < ratio < 3.5


def test_rs_big_dram_reduction(gpu_table):
    """Paper: RS reduces DRAM volume ~20x vs B."""
    assert gpu_table["B"].dram_volume / gpu_table["RS"].dram_volume > 5.0


def test_privatization_converts_global_to_local(gpu_table):
    assert gpu_table["P"].local_loadstore > 1000
    assert gpu_table["P"].global_loadstore < 100
    assert gpu_table["B"].local_loadstore == 0


def test_rspr_more_global_loads_than_rsp(gpu_table):
    """Paper Table II: RSPR global 71 > RSP 50."""
    assert gpu_table["RSPR"].global_loadstore > gpu_table["RSP"].global_loadstore


def test_baseline_thrashes_caches(gpu_table):
    """B: both caches well below 70% effectiveness at GPU concurrency."""
    assert gpu_table["B"].l1_effectiveness < 0.7
    assert gpu_table["B"].l2_effectiveness < 0.7


def test_gpu_gflops_increase_monotonically(gpu_table):
    g = [gpu_table[v].gflops for v in ("B", "P", "RS", "RSP", "RSPR")]
    assert g[0] < g[1] and g[2] < g[3] <= g[4] * 1.2
    assert g[-1] > 2000  # paper: ~2.5 TF/s


def test_rspr_past_roofline_knee(study, gpu_table):
    """Figure 3's punchline."""
    rl = study.roofline()
    c = gpu_table["RSPR"]
    assert c.dram_intensity > rl.knee
    assert gpu_table["B"].dram_intensity < rl.knee


def test_baseline_cannot_saturate_dram(gpu_table):
    """Paper: B reaches only ~608 of 1381 GB/s."""
    assert gpu_table["B"].gbs < 0.6 * 1381.0


# -- GPU vs CPU (Section IV) -----------------------------------------------------


def test_baseline_gpu_slower_than_cpu_node(gpu_table, cpu_table):
    """Paper: baseline runs 4-5x slower on the A100 than on 71 cores."""
    ratio = gpu_table["B"].runtime_ms / cpu_table["B"].runtime_multicore_ms
    assert 2.5 < ratio < 8.0


def test_final_gpu_beats_cpu_node(gpu_table, cpu_table):
    assert gpu_table["RSPR"].runtime_ms < cpu_table["RSP"].runtime_multicore_ms


# -- CPU table ---------------------------------------------------------------------


def test_cpu_runtime_ordering(cpu_table):
    assert (
        cpu_table["B"].runtime_1c_ms
        > cpu_table["RS"].runtime_1c_ms
        > cpu_table["RSP"].runtime_1c_ms
    )


def test_cpu_headline_speedup(cpu_table):
    """Paper: >5x CPU improvement B -> RSP."""
    assert cpu_table["B"].runtime_1c_ms / cpu_table["RSP"].runtime_1c_ms > 5.0


def test_cpu_l1_effectiveness_high(cpu_table):
    """CPU caches stay effective (74-94% in the paper) -- unlike the GPU."""
    for v in ("B", "RS", "RSP"):
        assert cpu_table[v].l1_effectiveness > 0.7


def test_cpu_compute_bound_intensity(cpu_table):
    """Paper: B's DRAM intensity 24 F/B > machine 15 F/B (compute bound)."""
    assert cpu_table["B"].dram_intensity > 15.0


def test_rsp_reduces_cpu_loadstore(cpu_table):
    assert cpu_table["RSP"].loadstore < cpu_table["RS"].loadstore


# -- scaling (Figure 2) --------------------------------------------------------------


def test_scaling_linear_then_turbo_kinks(study):
    rows = study.cpu_scaling(variants=["RSP"], worker_counts=[1, 2, 4, 8, 16])[
        "RSP"
    ]
    m = [r["melem_per_s"] for r in rows]
    w = [r["workers"] for r in rows]
    # linear within the first turbo bin
    for i in range(1, len(m)):
        assert m[i] / m[0] == pytest.approx(w[i] / w[0], rel=1e-6)


def test_scaling_kink_at_18_workers(study):
    rows = study.cpu_scaling(
        variants=["RSP"], worker_counts=[17, 18, 34, 36]
    )["RSP"]
    by_w = {r["workers"]: r["melem_per_s"] for r in rows}
    # 17 -> 34 doubles workers; per-socket count 17 stays in the 3.4 bin
    # (workers split over 2 sockets), so scaling is perfect...
    assert by_w[34] == pytest.approx(2 * by_w[17], rel=1e-6)
    # ...while 36 workers = 18/socket drops to the 3.1 GHz bin
    assert by_w[36] < 2 * by_w[18] * (3.4 / 3.1) + 1e-9
    assert by_w[36] / by_w[34] < 36 / 34  # sub-linear across the kink


def test_multicore_runtime_validates(study):
    model = CpuModel()
    with pytest.raises(ValueError, match="worker"):
        model.multicore_runtime(100.0, 100.0, 0, 1e6)


# -- internals ------------------------------------------------------------------------


def test_liveness_peak_measures_overlap(study):
    rep = study.trace("RSP")
    cands = [
        n for n, s in rep.temps.items()
        if s.storage is Storage.PRIVATE and s.static
    ]
    peak = _private_liveness_peak(rep, cands)
    total = sum(rep.temps[n].size for n in cands)
    assert 0 < peak <= total


def test_rspr_liveness_below_rsp(study):
    rsp = study.trace("RSP")
    rspr = study.trace("RSPR")

    def peak(rep):
        cands = [
            n for n, s in rep.temps.items()
            if s.storage is Storage.PRIVATE and s.static
        ]
        return _private_liveness_peak(rep, cands)

    assert peak(rspr) < peak(rsp)


def test_forwarding_window_shrinks_private_pattern(study):
    model = GpuModel()
    rep = study.trace("P")
    mapping = model.map_storage(rep)
    filtered = model.filter_pattern(rep, mapping)
    assert len(filtered) < len(rep.pattern)


def test_global_temps_never_forwarded(study):
    model = GpuModel()
    rep = study.trace("B")
    mapping = model.map_storage(rep)
    filtered = model.filter_pattern(rep, mapping)
    assert len(filtered) == len(rep.pattern)  # B has no private arrays


def test_cold_mesh_correction_positive():
    assert cold_mesh_dram_bytes() > 32.0
    assert cold_mesh_dram_bytes(locality_factor=1.0) < cold_mesh_dram_bytes(
        locality_factor=5.0
    )


def test_gpu_model_validates():
    with pytest.raises(ValueError):
        GpuModel(sim_sms=0)
