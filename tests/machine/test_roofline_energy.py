"""Roofline model and the energy estimate."""

import pytest

from repro.machine import (
    EnergyEstimate,
    Roofline,
    RooflinePoint,
    energy_comparison,
    gpu_roofline,
    render_ascii,
)


@pytest.fixture()
def rl():
    return gpu_roofline()


def test_knee_location(rl):
    assert rl.knee == pytest.approx(9.7e12 / 1381e9, rel=1e-12)


def test_attainable_below_knee_is_bandwidth(rl):
    x = 1.0
    assert rl.attainable(x) == pytest.approx(1381e9)


def test_attainable_above_knee_is_mix_roof(rl):
    assert rl.attainable(100.0) == pytest.approx(7.4e12)


def test_attainable_monotone(rl):
    xs = [0.1, 0.5, 1, 2, 5, 7, 10, 50]
    ys = [rl.attainable(x) for x in xs]
    assert ys == sorted(ys)


def test_attainable_rejects_negative(rl):
    with pytest.raises(ValueError):
        rl.attainable(-1.0)


def test_point_limited_by(rl):
    low = RooflinePoint("b", 0.3, 1e11)
    high = RooflinePoint("r", 9.0, 5e12)
    assert low.limited_by(rl) == "memory"
    assert high.limited_by(rl) == "compute"


def test_efficiency(rl):
    p = RooflinePoint("x", 1.0, 1381e9 / 2)
    assert rl.efficiency(p) == pytest.approx(0.5)


def test_series(rl):
    s = rl.series([0.5, 5.0])
    assert len(s) == 2
    assert s[0][1] == pytest.approx(0.5 * 1381e9)


def test_no_secondary_roof():
    r = Roofline("x", 100.0, 1000.0)
    assert r.attainable(1e9) == 1000.0


def test_render_ascii_contains_points(rl):
    pts = [RooflinePoint("B", 0.3, 1.6e11), RooflinePoint("R", 8.9, 2.5e12)]
    art = render_ascii(rl, pts)
    assert "B" in art and "R" in art and "knee" in art


# -- energy -----------------------------------------------------------------------


def test_energy_joules():
    e = EnergyEstimate("gpu", "RSPR", runtime_ms=51.0, power_watts=421.0)
    assert e.joules == pytest.approx(21.5, abs=0.1)  # the paper's 21 J


def test_paper_energy_numbers():
    """Feeding the paper's runtimes must reproduce its Section VI."""
    out = energy_comparison(
        gpu_runtimes_ms={"B": 3773.0, "RSPR": 51.0},
        cpu_runtimes_ms={"B": 785.0, "RSP": 122.0},
    )
    assert out["gpu"]["RSPR"] == pytest.approx(21.5, abs=0.1)
    assert out["cpu"]["RSP"] == pytest.approx(83.3, abs=0.2)
    assert out["ratios"]["best_cpu_over_best_gpu"] == pytest.approx(
        3.9, abs=0.2
    )
    # at the baseline the GPU is the *less* efficient option
    assert out["ratios"]["baseline_cpu_over_baseline_gpu"] < 1.0


def test_measured_energy_ratio_shape():
    from repro.core import OptimizationStudy

    study = OptimizationStudy()
    out = study.energy()
    assert 2.0 < out["ratios"]["best_cpu_over_best_gpu"] < 8.0
    assert out["ratios"]["baseline_cpu_over_baseline_gpu"] < 1.0
