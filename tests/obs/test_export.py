"""Exporters: JSONL round-trip, Chrome trace validity, bench.json schema."""

import json

import pytest

from repro.obs import (
    BENCH_SCHEMA,
    MetricsRegistry,
    Tracer,
    chrome_trace_events,
    read_bench_json,
    read_spans_jsonl,
    write_bench_json,
    write_chrome_trace,
    write_spans_jsonl,
)


@pytest.fixture()
def traced():
    tracer = Tracer(pid=1)
    with tracer.span("outer", variant="RSP"):
        with tracer.span("inner"):
            pass
    with tracer.span("second"):
        pass
    return tracer


def test_jsonl_round_trip(traced, tmp_path):
    path = tmp_path / "spans.jsonl"
    n = write_spans_jsonl(traced.finished, str(path))
    assert n == 3
    back = sorted(read_spans_jsonl(str(path)), key=lambda s: s.start)
    original = sorted(traced.finished, key=lambda s: s.start)
    assert [s.to_dict() for s in back] == [s.to_dict() for s in original]


def test_chrome_trace_events_structure(traced):
    events = chrome_trace_events(traced.finished)
    assert len(events) == 3
    assert all(e["ph"] == "X" for e in events)
    assert min(e["ts"] for e in events) == 0.0
    by_name = {e["name"]: e for e in events}
    outer, inner = by_name["outer"], by_name["inner"]
    # nesting: inner fully contained in outer on the same pid/tid row
    assert outer["ts"] <= inner["ts"]
    assert inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"] + 1e-6
    assert inner["pid"] == outer["pid"] == 1
    assert outer["args"] == {"variant": "RSP"}


def test_chrome_trace_file_round_trip(traced, tmp_path):
    path = tmp_path / "trace.json"
    n = write_chrome_trace(traced.finished, str(path), metadata={"run": "test"})
    assert n == 3
    doc = json.loads(path.read_text())
    assert doc["displayTimeUnit"] == "ms"
    assert doc["otherData"] == {"run": "test"}
    assert len(doc["traceEvents"]) == 3
    assert all(ev["dur"] >= 0 for ev in doc["traceEvents"])


def test_chrome_trace_skips_open_spans(tmp_path):
    tracer = Tracer()
    handle = tracer.span("open")
    handle.__enter__()  # never exited
    assert chrome_trace_events(tracer.finished) == []


def test_bench_json_round_trip(tmp_path):
    reg = MetricsRegistry()
    reg.counter("cg.iterations").inc(42)
    path = tmp_path / "bench.json"
    entries = [{"variant": "RSP", "wall_ms": 1.5, "gpu_model_runtime_ms": 16.9}]
    doc = write_bench_json(str(path), entries, metrics=reg, meta={"k": "v"})
    assert doc["schema"] == BENCH_SCHEMA

    back = read_bench_json(str(path))
    assert back["entries"] == entries
    assert back["metrics"]["cg.iterations"]["value"] == 42
    assert back["meta"] == {"k": "v"}
    assert isinstance(back["created_unix"], float)


def test_bench_json_rejects_wrong_schema(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text(json.dumps({"schema": "other/9", "entries": []}))
    with pytest.raises(ValueError, match="schema"):
        read_bench_json(str(path))
