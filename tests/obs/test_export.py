"""Exporters: JSONL round-trip, Chrome trace validity, bench.json schema."""

import json

import pytest

from repro.obs import (
    BENCH_SCHEMA,
    MetricsRegistry,
    Tracer,
    chrome_trace_events,
    read_bench_json,
    read_spans_jsonl,
    write_bench_json,
    write_chrome_trace,
    write_spans_jsonl,
)


@pytest.fixture()
def traced():
    tracer = Tracer(pid=1)
    with tracer.span("outer", variant="RSP"):
        with tracer.span("inner"):
            pass
    with tracer.span("second"):
        pass
    return tracer


def test_jsonl_round_trip(traced, tmp_path):
    path = tmp_path / "spans.jsonl"
    n = write_spans_jsonl(traced.finished, str(path))
    assert n == 3
    back = sorted(read_spans_jsonl(str(path)), key=lambda s: s.start)
    original = sorted(traced.finished, key=lambda s: s.start)
    assert [s.to_dict() for s in back] == [s.to_dict() for s in original]


def test_chrome_trace_events_structure(traced):
    events = chrome_trace_events(traced.finished)
    assert len(events) == 3
    assert all(e["ph"] == "X" for e in events)
    assert min(e["ts"] for e in events) == 0.0
    by_name = {e["name"]: e for e in events}
    outer, inner = by_name["outer"], by_name["inner"]
    # nesting: inner fully contained in outer on the same pid/tid row
    assert outer["ts"] <= inner["ts"]
    assert inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"] + 1e-6
    assert inner["pid"] == outer["pid"] == 1
    assert outer["args"] == {"variant": "RSP"}


def test_chrome_trace_file_round_trip(traced, tmp_path):
    path = tmp_path / "trace.json"
    n = write_chrome_trace(traced.finished, str(path), metadata={"run": "test"})
    assert n == 3
    doc = json.loads(path.read_text())
    assert doc["displayTimeUnit"] == "ms"
    assert doc["otherData"] == {"run": "test"}
    assert len(doc["traceEvents"]) == 3
    assert all(ev["dur"] >= 0 for ev in doc["traceEvents"])


def test_chrome_trace_skips_open_spans(tmp_path):
    tracer = Tracer()
    handle = tracer.span("open")
    handle.__enter__()  # never exited
    assert chrome_trace_events(tracer.finished) == []


def test_bench_json_round_trip(tmp_path):
    reg = MetricsRegistry()
    reg.counter("cg.iterations").inc(42)
    path = tmp_path / "bench.json"
    entries = [{"variant": "RSP", "wall_ms": 1.5, "gpu_model_runtime_ms": 16.9}]
    doc = write_bench_json(str(path), entries, metrics=reg, meta={"k": "v"})
    assert doc["schema"] == BENCH_SCHEMA

    back = read_bench_json(str(path))
    assert back["entries"] == entries
    assert back["metrics"]["cg.iterations"]["value"] == 42
    assert back["meta"] == {"k": "v"}
    assert isinstance(back["created_unix"], float)


def test_bench_json_rejects_wrong_schema(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text(json.dumps({"schema": "other/9", "entries": []}))
    with pytest.raises(ValueError, match="schema"):
        read_bench_json(str(path))


# -- collapsed stacks / flamegraph ------------------------------------------


def test_collapse_spans_self_time(traced):
    from repro.obs import collapse_spans

    collapsed = collapse_spans(traced.finished)
    # parent self-time excludes the completed child's duration
    outer = next(k for k in collapsed if k.endswith(";outer"))
    inner = next(k for k in collapsed if "outer;inner" in k)
    assert outer.startswith("rank1;")
    assert collapsed[outer] >= 0 and collapsed[inner] >= 0
    total = sum(collapsed.values())
    wall = sum(
        s.end - s.start for s in traced.finished if s.parent_id is None
    )
    assert total <= wall * 1e6 + 2  # self-times never exceed wall (usec)


def test_write_flamegraph_sorted_lines(tmp_path):
    from repro.obs import write_flamegraph

    path = tmp_path / "flame.txt"
    n = write_flamegraph({"a;b": 5, "a;c": 0, "a": 7}, str(path))
    lines = path.read_text().splitlines()
    assert n == len(lines) == 2  # zero-weight stack dropped
    assert lines == sorted(lines)


# -- prometheus text exposition ---------------------------------------------


def test_prometheus_text_instruments():
    from repro.obs import prometheus_text

    reg = MetricsRegistry()
    reg.counter("runner.tasks").inc(3)
    reg.gauge("study.wall_ms.RSP").set(12.5)
    for v in (1.0, 2.0, 3.0, 4.0):
        reg.histogram("cg.iters").record(v)
    text = prometheus_text(reg)
    assert "# TYPE repro_runner_tasks counter" in text
    assert "repro_runner_tasks 3" in text
    assert "# TYPE repro_study_wall_ms_RSP gauge" in text
    assert "repro_study_wall_ms_RSP 12.5" in text
    assert "# TYPE repro_cg_iters summary" in text
    assert 'repro_cg_iters{quantile="0.5"}' in text
    assert "repro_cg_iters_count 4" in text
    assert "repro_cg_iters_sum 10" in text


def test_prometheus_exporter_interval_gate(tmp_path):
    from repro.obs import PrometheusExporter

    reg = MetricsRegistry()
    reg.counter("c").inc()
    path = tmp_path / "m.prom"
    exporter = PrometheusExporter(str(path), metrics=reg, interval=3600.0)
    assert exporter.maybe_write(now=0.0)  # first write always lands
    assert not exporter.maybe_write(now=10.0)  # gated by the interval
    assert exporter.maybe_write(now=4000.0)
    exporter.flush()  # unconditional
    assert exporter.writes == 3
    assert "repro_c 1" in path.read_text()
    # atomic write leaves no temp file behind
    assert list(tmp_path.iterdir()) == [path]
