"""Bench history store + EWMA/CUSUM drift detection (warn-only CI lane)."""

import importlib.util
import json
import math
import pathlib

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent.parent


def _load(module, filename):
    spec = importlib.util.spec_from_file_location(
        module, REPO_ROOT / "benchmarks" / filename
    )
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


@pytest.fixture(scope="module")
def history():
    return _load("bench_history_under_test", "history.py")


@pytest.fixture(scope="module")
def check_regression():
    return _load("check_regression_under_test", "check_regression.py")


def _entry(wall, variant="RSP", **kw):
    row = {"variant": variant, "vector_dim": 64, "mode": "compiled",
           "executor": "serial", "wall_ms": wall}
    row.update(kw)
    return row


# -- store ------------------------------------------------------------------


def test_append_and_read_roundtrip(history, tmp_path):
    path = tmp_path / "hist.jsonl"
    for i in range(3):
        rec = history.append_history(
            str(path),
            [_entry(10.0 + i), {"benchmark": "scatter"}],  # no-variant row
            meta={"session": i},
            timestamp=100.0 + i,
        )
        assert rec["schema"] == history.HISTORY_SCHEMA
    records = history.read_history(str(path))
    assert len(records) == 3
    assert [r["timestamp"] for r in records] == [100.0, 101.0, 102.0]
    # variant-less side rows are dropped; slim rows keep key + measured
    assert all(len(r["entries"]) == 1 for r in records)
    row = records[0]["entries"][0]
    assert row == {"variant": "RSP", "vector_dim": 64, "mode": "compiled",
                   "executor": "serial", "wall_ms": 10.0}


def test_read_skips_corrupt_lines(history, tmp_path):
    path = tmp_path / "hist.jsonl"
    history.append_history(str(path), [_entry(1.0)], timestamp=1.0)
    with open(path, "a") as fh:
        fh.write("{truncated by a killed CI job\n")
    history.append_history(str(path), [_entry(2.0)], timestamp=2.0)
    records = history.read_history(str(path))
    assert len(records) == 2


def test_series_groups_by_entry_key(history):
    records = [
        {"entries": [_entry(1.0), _entry(9.0, variant="RS")]},
        {"entries": [_entry(2.0), _entry(8.0, variant="RS")]},
    ]
    s = history.series(records)
    key = ("variants", "RSP", 64, "compiled", None, "serial", None)
    assert s[key] == [1.0, 2.0]
    assert s[("variants", "RS", 64, "compiled", None, "serial", None)] == [
        9.0, 8.0,
    ]
    # a different executor is a different series
    records[0]["entries"][0] = _entry(5.0, executor="threads")
    s = history.series(records)
    assert ("variants", "RSP", 64, "compiled", None, "threads", None) in s
    # ... and so is a scenario batch size (S=1 never mixes with S=16)
    records[0]["entries"].append(_entry(3.0, scenarios=16))
    s = history.series(records)
    assert s[("variants", "RSP", 64, "compiled", None, "serial", 16)] == [3.0]


def test_key_label(history):
    assert history.key_label(
        ("variants", "RSP", 1024, "compiled", None, "serial")
    ) == "RSP@vd1024"
    assert history.key_label(
        ("tape", "RS", 64, "compiled", "sfc", "threads")
    ) == "tape/RS@vd64+sfc+threads"
    assert history.key_label(
        ("batch", "B", 1024, "compiled", None, "serial", 16)
    ) == "batch/B@vd1024@S16"


# -- EWMA drift -------------------------------------------------------------


def test_ewma_flags_genuine_drift(history):
    flat = [10.0 + 0.01 * (i % 3) for i in range(12)]
    assert not history.ewma_drift(flat)["drift"]
    jumped = flat[:-1] + [13.0]  # +30% on the last session
    verdict = history.ewma_drift(jumped)
    assert verdict["drift"]
    assert verdict["excess"] > 0.25
    assert verdict["z"] > 3.0


def test_ewma_ignores_noise_and_improvement(history):
    # noisy-but-flat: large std swallows the excursion (z gate)
    noisy = [10.0, 14.0, 7.0, 12.0, 8.0, 13.0, 9.0, 12.5]
    assert not history.ewma_drift(noisy)["drift"]
    # getting faster is never drift (one-sided)
    faster = [10.0] * 10 + [6.0]
    assert not history.ewma_drift(faster)["drift"]
    # tiny jitter above a tiny mean: relative gate holds it back
    jitter = [10.0] * 10 + [10.4]
    assert not history.ewma_drift(jitter)["drift"]


def test_ewma_short_series_never_drifts(history):
    assert not history.ewma_drift([])["drift"]
    assert not history.ewma_drift([1.0, 100.0])["drift"]
    assert not history.ewma_drift([1.0] * 4 + [99.0], min_points=6)["drift"]


def test_ewma_zero_variance_history(history):
    verdict = history.ewma_drift([10.0] * 10 + [13.0])
    assert verdict["std"] == 0.0 and math.isinf(verdict["z"])
    assert verdict["drift"]


# -- CUSUM changepoint ------------------------------------------------------


def test_cusum_finds_sustained_shift(history):
    values = [10.0] * 10 + [12.0] * 10
    idx = history.cusum_changepoint(values)
    assert idx is not None
    # values are z-scored against the whole series, so the detector may
    # fire on the low pre-shift plateau or the high post-shift one --
    # either way it localizes the shift's neighbourhood
    assert 5 <= idx <= 14

    assert history.cusum_changepoint([10.0] * 20) is None
    # a single-point spike is not a sustained shift
    spiky = [10.0] * 10 + [12.0] + [10.0] * 9
    assert history.cusum_changepoint(spiky) is None


def test_cusum_short_or_constant_series(history):
    assert history.cusum_changepoint([10.0, 12.0]) is None
    assert history.cusum_changepoint([5.0] * 30) is None


# -- drift_report + CLI -----------------------------------------------------


def _write_history(history, path, walls, variant="RSP"):
    for i, w in enumerate(walls):
        history.append_history(
            str(path), [_entry(w, variant=variant)], timestamp=float(i)
        )


def test_drift_report_windows_and_labels(history, tmp_path):
    path = tmp_path / "hist.jsonl"
    _write_history(history, path, [10.0] * 14 + [13.5])
    findings = history.drift_report(history.read_history(str(path)))
    assert len(findings) == 1
    f = findings[0]
    assert f["label"] == "RSP@vd64"
    assert f["field"] == "wall_ms"
    assert f["drift"]
    # a window that excludes the old plateau sees too few points to fire
    assert history.drift_report(
        history.read_history(str(path)), window=3
    ) == []


def test_check_regression_drift_cli(history, check_regression, tmp_path,
                                    capsys):
    path = tmp_path / "hist.jsonl"
    _write_history(history, path, [10.0] * 14 + [14.0])
    rc = check_regression.main(
        ["--drift", "--history", str(path),
         "--bench", str(tmp_path / "missing.json")]
    )
    out = capsys.readouterr().out
    assert rc == 0  # drift is always warn-only
    assert "DRIFT" in out
    assert "RSP@vd64" in out

    # quiet history: explicit all-clear line
    quiet = tmp_path / "quiet.jsonl"
    _write_history(history, quiet, [10.0] * 15)
    rc = check_regression.main(
        ["--drift", "--history", str(quiet),
         "--bench", str(tmp_path / "missing.json")]
    )
    out = capsys.readouterr().out
    assert rc == 0 and "drift OK" in out

    # missing history file: skipped, not fatal
    rc = check_regression.main(
        ["--drift", "--history", str(tmp_path / "nope.jsonl"),
         "--bench", str(tmp_path / "missing.json")]
    )
    out = capsys.readouterr().out
    assert rc == 0 and "drift skipped" in out


def test_check_regression_strict_ignores_drift(history, check_regression,
                                               tmp_path, capsys):
    """--strict gates on baseline regressions, never on drift findings."""
    path = tmp_path / "hist.jsonl"
    _write_history(history, path, [10.0] * 14 + [14.0])
    bench = {"schema": "repro-bench/1", "entries": [_entry(10.0)],
             "metrics": {}}
    baseline = {"schema": "repro-bench/1", "entries": [_entry(10.0)],
                "metrics": {}}
    bench_path = tmp_path / "bench.json"
    base_path = tmp_path / "base.json"
    bench_path.write_text(json.dumps(bench))
    base_path.write_text(json.dumps(baseline))
    rc = check_regression.main(
        ["--drift", "--strict", "--history", str(path),
         "--bench", str(bench_path), "--baseline", str(base_path)]
    )
    out = capsys.readouterr().out
    assert "DRIFT" in out
    assert rc == 0


def test_entry_key_shared_with_check_regression(history, check_regression):
    entry = _entry(1.0, ordering="sfc")
    assert check_regression._entry_key(entry) == history.entry_key(entry)
