"""Telemetry threaded through the hot paths: study, CG, fractional step,
parallel runner, and the regression guard."""

import importlib.util
import json
import pathlib

import numpy as np
import pytest

from repro.core import OptimizationStudy
from repro.fem import box_tet_mesh
from repro.io import write_bench_artifacts
from repro.obs import MetricsRegistry, Tracer, write_chrome_trace
from repro.parallel import MultiprocessRunner, assemble_partitioned
from repro.physics import AssemblyParams
from repro.physics.fractional_step import FractionalStepSolver
from repro.solvers import SolverError, conjugate_gradient

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent.parent


@pytest.fixture(scope="module")
def tiny_mesh():
    return box_tet_mesh(4, 4, 4)


@pytest.fixture(scope="module")
def params():
    return AssemblyParams(body_force=(0.0, 0.0, 0.1))


# ---------------------------------------------------------------------------
# OptimizationStudy (the acceptance criterion)
# ---------------------------------------------------------------------------


def test_study_traced_chrome_trace_and_bench_entries(tiny_mesh, tmp_path):
    tracer = Tracer(pid=0)
    registry = MetricsRegistry()
    study = OptimizationStudy(mesh=tiny_mesh, tracer=tracer, metrics=registry)
    entries = study.bench_summary()

    # bench entries: per-variant wall clock + model runtime
    by_variant = {e["variant"]: e for e in entries}
    assert set(by_variant) == {"B", "P", "RS", "RSP", "RSPR"}
    for entry in entries:
        assert entry["wall_ms"] > 0
        assert "gpu_model_runtime_ms" in entry or "cpu_model_runtime_ms" in entry
    assert by_variant["RSP"]["gpu_model_runtime_ms"] > 0
    assert by_variant["RSP"]["cpu_model_runtime_ms"] > 0

    # chrome trace: valid JSON with nested spans for every variant
    trace_path = tmp_path / "trace.json"
    write_chrome_trace(tracer.finished, str(trace_path))
    doc = json.loads(trace_path.read_text())
    events = doc["traceEvents"]
    assert events and all(ev["ph"] == "X" for ev in events)
    variant_events = [ev for ev in events if ev["name"] == "variant"]
    assert {ev["args"]["variant"] for ev in variant_events} == {
        "B", "P", "RS", "RSP", "RSPR",
    }
    # nesting: each gpu_model span lies inside some variant span
    spans = {s.span_id: s for s in tracer.finished}
    model_spans = [s for s in tracer.finished if s.name == "gpu_model"]
    assert model_spans
    for s in model_spans:
        assert spans[s.parent_id].name == "variant"

    # registry carries the model runtimes
    snap = registry.snapshot()
    assert snap["study.gpu_runtime_ms.RSPR"]["value"] > 0
    assert snap["study.cpu_runtime_ms.B"]["value"] > 0

    # and the artifact writer produces the full BENCH_* set
    paths = write_bench_artifacts(
        str(tmp_path), entries, tracer=tracer, metrics=registry
    )
    assert set(paths) == {"bench", "trace", "spans"}
    assert json.loads(pathlib.Path(paths["bench"]).read_text())["entries"]


def test_study_null_tracer_outputs_identical(tiny_mesh):
    plain = OptimizationStudy(mesh=tiny_mesh, metrics=MetricsRegistry())
    traced = OptimizationStudy(
        mesh=tiny_mesh, tracer=Tracer(), metrics=MetricsRegistry()
    )
    assert plain.format_gpu_table(plain.gpu_table()) == traced.format_gpu_table(
        traced.gpu_table()
    )
    assert plain.format_cpu_table(plain.cpu_table()) == traced.format_cpu_table(
        traced.cpu_table()
    )


# ---------------------------------------------------------------------------
# CG
# ---------------------------------------------------------------------------


def test_cg_records_metrics_and_span():
    a = np.diag([1.0, 2.0, 3.0])
    b = np.array([1.0, 1.0, 1.0])
    tracer = Tracer()
    registry = MetricsRegistry()
    result = conjugate_gradient(a, b, tracer=tracer, metrics=registry)
    assert result.converged

    snap = registry.snapshot()
    assert snap["cg.solves"]["value"] == 1
    assert snap["cg.iterations"]["value"] == result.iterations
    assert snap["cg.solve_iterations"]["count"] == 1
    (span,) = [s for s in tracer.finished if s.name == "cg_solve"]
    assert span.attributes["converged"] is True
    assert span.attributes["iterations"] == result.iterations


def test_solver_error_structured_context():
    # force failure via a tiny iteration budget on a random SPD system
    rng = np.random.default_rng(0)
    m = rng.standard_normal((40, 40))
    a = m @ m.T + 40 * np.eye(40)
    b = rng.standard_normal(40)
    registry = MetricsRegistry()
    with pytest.raises(SolverError) as exc_info:
        conjugate_gradient(
            a, b, tol=1e-14, maxiter=2, raise_on_fail=True, metrics=registry
        )
    err = exc_info.value
    assert err.iterations == 2
    assert err.residual_norm > 0
    assert len(err.residual_history) == 3  # initial + 2 iterations
    assert err.target is not None
    ctx = err.context()
    assert ctx["iterations"] == 2
    assert ctx["residual_history"] == err.residual_history[-32:]
    assert registry.snapshot()["cg.failures"]["value"] == 1


# ---------------------------------------------------------------------------
# Fractional step
# ---------------------------------------------------------------------------


def test_fractional_step_stage_spans_and_metrics(tiny_mesh, params):
    tracer = Tracer()
    registry = MetricsRegistry()
    solver = FractionalStepSolver(
        tiny_mesh, params, tracer=tracer, metrics=registry
    )
    rng = np.random.default_rng(1)
    solver.set_velocity(0.05 * rng.standard_normal((tiny_mesh.nnode, 3)))
    solver.run(steps=2, dt=1e-3)

    spans = tracer.finished
    steps = [s for s in spans if s.name == "step"]
    assert len(steps) == 2
    by_parent = {}
    for s in spans:
        by_parent.setdefault(s.parent_id, []).append(s.name)
    for step in steps:
        assert {"momentum", "pressure", "projection"} <= set(
            by_parent[step.span_id]
        )

    snap = registry.snapshot()
    assert snap["fstep.steps"]["value"] == 2
    assert snap["fstep.assemblies"]["value"] == 6  # 3 RK sweeps per step
    assert snap["fstep.pressure_iterations"]["count"] == 2


# ---------------------------------------------------------------------------
# Parallel runner
# ---------------------------------------------------------------------------


def test_assemble_partitioned_halo_metrics(tiny_mesh, params):
    rng = np.random.default_rng(2)
    velocity = 0.1 * rng.standard_normal((tiny_mesh.nnode, 3))
    tracer = Tracer()
    registry = MetricsRegistry()
    rhs = assemble_partitioned(
        tiny_mesh, velocity, params, nranks=4, tracer=tracer, metrics=registry
    )
    assert np.isfinite(rhs).all()
    snap = registry.snapshot()
    assert snap["halo.bytes_exchanged"]["value"] > 0
    assert snap["halo.messages"]["value"] >= 2
    ranks = {s.attributes["rank"] for s in tracer.finished if s.name == "rank_assemble"}
    assert ranks == {0, 1, 2, 3}


def test_multiprocess_runner_merges_rank_timelines(params):
    mesh = box_tet_mesh(3, 3, 3)
    tracer = Tracer(pid=0)
    runner = MultiprocessRunner(mesh, params, repeats=1, tracer=tracer)
    points = runner.measure([1, 2])
    assert len(points) == 2

    spans = tracer.finished
    # parent-side measure spans plus merged per-rank timelines
    assert sum(1 for s in spans if s.name == "measure") == 2
    rank_spans = [s for s in spans if s.name == "rank"]
    assert {s.attributes["rank"] for s in rank_spans} == {0, 1}
    assert {s.pid for s in rank_spans} == {0, 1}
    assert all(s.end is not None for s in spans)


# ---------------------------------------------------------------------------
# Regression guard
# ---------------------------------------------------------------------------


def _load_check_regression():
    path = REPO_ROOT / "benchmarks" / "check_regression.py"
    spec = importlib.util.spec_from_file_location("check_regression", path)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


def test_check_regression_compare_flags_slowdowns():
    mod = _load_check_regression()
    baseline = {"entries": [{"variant": "RSP", "wall_ms": 100.0}]}
    fresh = {
        "entries": [
            {"variant": "RSP", "wall_ms": 130.0},
            {"variant": "NEW", "wall_ms": 5.0},  # no baseline: ignored
        ]
    }
    regs = mod.compare(fresh, baseline, threshold=0.20)
    assert len(regs) == 1
    variant, field, old, new, ratio = regs[0]
    assert (variant, field) == ("RSP", "wall_ms")
    assert ratio == pytest.approx(1.3)
    # within threshold: clean
    assert mod.compare(fresh, baseline, threshold=0.35) == []


def test_check_regression_main_nonfatal(tmp_path, capsys):
    mod = _load_check_regression()
    from repro.obs import write_bench_json

    bench = tmp_path / "BENCH_variants.json"
    base = tmp_path / "baseline.json"
    write_bench_json(str(bench), [{"variant": "B", "wall_ms": 200.0}])
    write_bench_json(str(base), [{"variant": "B", "wall_ms": 100.0}])

    rc = mod.main(["--bench", str(bench), "--baseline", str(base)])
    assert rc == 0  # non-fatal by default
    assert "WARNING" in capsys.readouterr().out
    rc = mod.main(
        ["--bench", str(bench), "--baseline", str(base), "--strict"]
    )
    assert rc == 1

    rc = mod.main(["--bench", str(tmp_path / "missing.json")])
    assert rc == 0  # missing artifacts skip cleanly
