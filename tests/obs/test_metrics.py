"""Metric registry: instruments, snapshots, merge (incl. across processes)."""

import multiprocessing as mp

import pytest

from repro.obs import MetricsRegistry, get_registry, set_registry


def test_counter_gauge_histogram_basics():
    reg = MetricsRegistry()
    reg.counter("c").inc()
    reg.counter("c").inc(2.5)
    reg.gauge("g").set(7.0)
    for v in (1.0, 2.0, 3.0):
        reg.histogram("h").record(v)

    snap = reg.snapshot()
    assert snap["c"] == {"kind": "counter", "value": 3.5}
    assert snap["g"] == {"kind": "gauge", "value": 7.0}
    h = snap["h"]
    assert h["count"] == 3 and h["sum"] == 6.0
    assert h["min"] == 1.0 and h["max"] == 3.0 and h["mean"] == 2.0
    assert h["samples"] == [1.0, 2.0, 3.0]


def test_counter_rejects_negative():
    reg = MetricsRegistry()
    with pytest.raises(ValueError):
        reg.counter("c").inc(-1)


def test_kind_collision_raises():
    reg = MetricsRegistry()
    reg.counter("x")
    with pytest.raises(TypeError):
        reg.gauge("x")
    with pytest.raises(TypeError):
        reg.histogram("x")


def test_same_instrument_returned():
    reg = MetricsRegistry()
    assert reg.counter("a") is reg.counter("a")
    assert reg.names() == ["a"]


def test_merge_registries():
    a, b = MetricsRegistry(), MetricsRegistry()
    a.counter("n").inc(1)
    b.counter("n").inc(2)
    b.gauge("g").set(9.0)
    a.histogram("h").record(1.0)
    b.histogram("h").record(5.0)

    a.merge(b)
    snap = a.snapshot()
    assert snap["n"]["value"] == 3
    assert snap["g"]["value"] == 9.0
    assert snap["h"]["count"] == 2
    assert snap["h"]["min"] == 1.0 and snap["h"]["max"] == 5.0


def test_merge_from_snapshot_with_clipped_samples():
    src = MetricsRegistry()
    hist = src.histogram("h")
    hist.max_samples = 2
    for v in (1.0, 2.0, 10.0):
        hist.record(v)
    snap = src.snapshot()
    assert len(snap["h"]["samples"]) == 2  # 10.0 clipped from samples

    dst = MetricsRegistry()
    dst.merge(snap)
    merged = dst.snapshot()["h"]
    assert merged["count"] == 3
    assert merged["sum"] == 13.0
    assert merged["max"] == 10.0


def test_merge_unknown_kind_raises():
    reg = MetricsRegistry()
    with pytest.raises(ValueError):
        reg.merge({"weird": {"kind": "meter", "value": 1}})


def _rank_metrics(rank):
    """Worker: produce one rank's metric snapshot (fork-pool target)."""
    reg = MetricsRegistry()
    reg.counter("work.items").inc(rank + 1)
    reg.histogram("work.cost").record(float(rank))
    reg.gauge("work.last_rank").set(rank)
    return reg.snapshot()


def test_registry_merge_across_processes():
    ctx = mp.get_context("fork")
    with ctx.Pool(processes=2) as pool:
        snapshots = pool.map(_rank_metrics, range(4))

    merged = MetricsRegistry()
    for snap in snapshots:
        merged.merge(snap)
    out = merged.snapshot()
    assert out["work.items"]["value"] == 1 + 2 + 3 + 4
    assert out["work.cost"]["count"] == 4
    assert out["work.cost"]["min"] == 0.0 and out["work.cost"]["max"] == 3.0
    assert out["work.last_rank"]["value"] in {0, 1, 2, 3}


def test_default_registry_set_reset():
    original = get_registry()
    fresh = set_registry(MetricsRegistry())
    try:
        assert get_registry() is fresh
        assert get_registry() is not original
    finally:
        set_registry(original)
    assert get_registry() is original


# -- reservoir sampling + merge edge cases ----------------------------------


def test_merge_empty_registries():
    a, b = MetricsRegistry(), MetricsRegistry()
    a.merge(b)
    assert a.snapshot() == {}
    a.merge({})  # empty snapshot form
    assert a.snapshot() == {}
    # empty merged into populated leaves it untouched
    c = MetricsRegistry()
    c.counter("n").inc(2)
    c.merge(MetricsRegistry())
    assert c.snapshot()["n"]["value"] == 2


def test_merge_same_name_different_kind_raises():
    a = MetricsRegistry()
    a.counter("x").inc()
    b = MetricsRegistry()
    b.gauge("x").set(1.0)
    with pytest.raises(TypeError):
        a.merge(b)
    c = MetricsRegistry()
    c.histogram("x").record(1.0)
    with pytest.raises(TypeError):
        a.merge(c.snapshot())


def test_reservoir_bounds_and_exact_summary():
    reg = MetricsRegistry()
    hist = reg.histogram("h")
    hist.max_samples = 64
    for i in range(1000):
        hist.record(float(i))
    assert len(hist.samples) == 64  # bounded
    # scalar summary stays exact regardless of sampling
    assert hist.count == 1000
    assert hist.total == sum(range(1000))
    assert hist.min == 0.0 and hist.max == 999.0
    # the reservoir is uniform over the whole stream, not the first 64:
    # late observations must appear
    assert any(s >= 500.0 for s in hist.samples)


def test_reservoir_deterministic_per_name():
    def fill(name):
        reg = MetricsRegistry()
        h = reg.histogram(name)
        h.max_samples = 16
        for i in range(500):
            h.record(float(i))
        return list(h.samples)

    assert fill("same") == fill("same")  # name-seeded RNG
    assert fill("same") != fill("other")


def test_percentiles_in_snapshot():
    reg = MetricsRegistry()
    hist = reg.histogram("h")
    for i in range(101):
        hist.record(float(i))
    snap = reg.snapshot()["h"]
    assert snap["p50"] == 50.0
    assert snap["p95"] == 95.0
    assert snap["p99"] == 99.0
    # empty histogram reports None quantiles
    empty = MetricsRegistry().histogram("e").snapshot()
    assert empty["p50"] is None and empty["p99"] is None


def test_histogram_snapshot_merge_after_reservoir():
    """Merging a clipped reservoir snapshot keeps exact scalars and a
    bounded sample set, and the quantiles remain computable."""
    src = MetricsRegistry()
    hist = src.histogram("h")
    hist.max_samples = 8
    for i in range(100):
        hist.record(float(i))
    snap = src.snapshot()
    assert len(snap["h"]["samples"]) == 8

    dst = MetricsRegistry()
    dst.histogram("h").max_samples = 8
    for i in range(100, 120):
        dst.histogram("h").record(float(i))
    dst.merge(snap)
    merged = dst.snapshot()["h"]
    assert merged["count"] == 120
    assert merged["sum"] == sum(range(120))
    assert merged["min"] == 0.0 and merged["max"] == 119.0
    assert len(merged["samples"]) <= 8
    assert merged["p50"] is not None
