"""Metric registry: instruments, snapshots, merge (incl. across processes)."""

import multiprocessing as mp

import pytest

from repro.obs import MetricsRegistry, get_registry, set_registry


def test_counter_gauge_histogram_basics():
    reg = MetricsRegistry()
    reg.counter("c").inc()
    reg.counter("c").inc(2.5)
    reg.gauge("g").set(7.0)
    for v in (1.0, 2.0, 3.0):
        reg.histogram("h").record(v)

    snap = reg.snapshot()
    assert snap["c"] == {"kind": "counter", "value": 3.5}
    assert snap["g"] == {"kind": "gauge", "value": 7.0}
    h = snap["h"]
    assert h["count"] == 3 and h["sum"] == 6.0
    assert h["min"] == 1.0 and h["max"] == 3.0 and h["mean"] == 2.0
    assert h["samples"] == [1.0, 2.0, 3.0]


def test_counter_rejects_negative():
    reg = MetricsRegistry()
    with pytest.raises(ValueError):
        reg.counter("c").inc(-1)


def test_kind_collision_raises():
    reg = MetricsRegistry()
    reg.counter("x")
    with pytest.raises(TypeError):
        reg.gauge("x")
    with pytest.raises(TypeError):
        reg.histogram("x")


def test_same_instrument_returned():
    reg = MetricsRegistry()
    assert reg.counter("a") is reg.counter("a")
    assert reg.names() == ["a"]


def test_merge_registries():
    a, b = MetricsRegistry(), MetricsRegistry()
    a.counter("n").inc(1)
    b.counter("n").inc(2)
    b.gauge("g").set(9.0)
    a.histogram("h").record(1.0)
    b.histogram("h").record(5.0)

    a.merge(b)
    snap = a.snapshot()
    assert snap["n"]["value"] == 3
    assert snap["g"]["value"] == 9.0
    assert snap["h"]["count"] == 2
    assert snap["h"]["min"] == 1.0 and snap["h"]["max"] == 5.0


def test_merge_from_snapshot_with_clipped_samples():
    src = MetricsRegistry()
    hist = src.histogram("h")
    hist.max_samples = 2
    for v in (1.0, 2.0, 10.0):
        hist.record(v)
    snap = src.snapshot()
    assert len(snap["h"]["samples"]) == 2  # 10.0 clipped from samples

    dst = MetricsRegistry()
    dst.merge(snap)
    merged = dst.snapshot()["h"]
    assert merged["count"] == 3
    assert merged["sum"] == 13.0
    assert merged["max"] == 10.0


def test_merge_unknown_kind_raises():
    reg = MetricsRegistry()
    with pytest.raises(ValueError):
        reg.merge({"weird": {"kind": "meter", "value": 1}})


def _rank_metrics(rank):
    """Worker: produce one rank's metric snapshot (fork-pool target)."""
    reg = MetricsRegistry()
    reg.counter("work.items").inc(rank + 1)
    reg.histogram("work.cost").record(float(rank))
    reg.gauge("work.last_rank").set(rank)
    return reg.snapshot()


def test_registry_merge_across_processes():
    ctx = mp.get_context("fork")
    with ctx.Pool(processes=2) as pool:
        snapshots = pool.map(_rank_metrics, range(4))

    merged = MetricsRegistry()
    for snap in snapshots:
        merged.merge(snap)
    out = merged.snapshot()
    assert out["work.items"]["value"] == 1 + 2 + 3 + 4
    assert out["work.cost"]["count"] == 4
    assert out["work.cost"]["min"] == 0.0 and out["work.cost"]["max"] == 3.0
    assert out["work.last_rank"]["value"] in {0, 1, 2, 3}


def test_default_registry_set_reset():
    original = get_registry()
    fresh = set_registry(MetricsRegistry())
    try:
        assert get_registry() is fresh
        assert get_registry() is not original
    finally:
        set_registry(original)
    assert get_registry() is original
