"""Op-level tape profiler: bit-identity, byte attribution, exports.

The two acceptance criteria of the profiler live here: profiled
assemblies must be **bitwise identical** to unprofiled ones across every
variant (hypothesis property test), and the measured per-op bytes must
agree with the :class:`~repro.core.tape.TapeReport` predicted traffic
within the stated tolerance.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import UnifiedAssembler, variant_names
from repro.core.tape import compiled_tape
from repro.fem import box_tet_mesh, get_plan
from repro.machine import gpu_roofline
from repro.obs import (
    NULL_PROFILER,
    MetricsRegistry,
    NullProfiler,
    TapeProfile,
    TapeProfiler,
    op_costs_from_program,
    profile_trace_events,
    write_flamegraph,
)
from repro.physics import AssemblyParams

#: predicted_bytes() is an all-vector upper bound; constant folding turns
#: some operands into scalars, measured ~9-11% below prediction on the
#: real variants.  15% is the stated acceptance tolerance.
BYTE_RESIDUAL_TOLERANCE = 0.15


@pytest.fixture(scope="module")
def mesh():
    return box_tet_mesh(4, 4, 4)


@pytest.fixture(scope="module")
def prof_params():
    return AssemblyParams(body_force=(0.0, 0.0, 0.1))


@pytest.fixture(scope="module")
def prof_velocity(mesh):
    rng = np.random.default_rng(7)
    return 0.1 * rng.standard_normal((mesh.nnode, 3))


def _assemble(mesh, params, velocity, variant, vector_dim, **kw):
    asm = UnifiedAssembler(mesh, params, vector_dim=vector_dim, **kw)
    return asm.assemble(variant, velocity)


# ---------------------------------------------------------------------------
# Acceptance: bit-identity of profiled assemblies
# ---------------------------------------------------------------------------


@settings(max_examples=15, deadline=None)
@given(
    variant=st.sampled_from(variant_names()),
    vector_dim=st.sampled_from([16, 64]),
    seed=st.integers(min_value=0, max_value=4),
)
def test_profiled_assembly_bitwise_identical(variant, vector_dim, seed):
    """Profiling on must never change a single bit of the result."""
    mesh = box_tet_mesh(3, 3, 3)
    params = AssemblyParams(body_force=(0.05, -0.1, 0.2))
    rng = np.random.default_rng(seed)
    velocity = 0.1 * rng.standard_normal((mesh.nnode, 3))

    ref = _assemble(mesh, params, velocity, variant, vector_dim,
                    mode="compiled")
    out = _assemble(
        mesh, params, velocity, variant, vector_dim, mode="compiled",
        profile=True,
    )
    assert np.array_equal(ref, out), (
        f"{variant}@vd{vector_dim}: profiled RHS differs"
    )


def test_profiled_interpreted_bitwise_identical(
    mesh, prof_params, prof_velocity
):
    for variant in variant_names():
        ref = _assemble(
            mesh, prof_params, prof_velocity, variant, 32, mode="interpreted"
        )
        out = _assemble(
            mesh, prof_params, prof_velocity, variant, 32,
            mode="interpreted", profile=True,
        )
        assert np.array_equal(ref, out), f"{variant}: interpreted differs"


def test_profiled_threads_bitwise_identical(mesh, prof_params, prof_velocity):
    ref = _assemble(
        mesh, prof_params, prof_velocity, "RSP", 32,
        mode="compiled", executor="threads", num_threads=2,
    )
    profiler = TapeProfiler()
    out = _assemble(
        mesh, prof_params, prof_velocity, "RSP", 32,
        mode="compiled", executor="threads", num_threads=2,
        profiler=profiler,
    )
    assert np.array_equal(ref, out)
    vd = 32
    prof = profiler.profiles[("RSP", vd, "compiled", "threads")]
    assert prof.executions == 1
    assert prof.total_seconds > 0


# ---------------------------------------------------------------------------
# Acceptance: measured vs predicted byte traffic
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("variant", ["RS", "RSP"])
def test_measured_bytes_match_predicted(
    mesh, prof_params, prof_velocity, variant
):
    """Profiled per-op bytes agree with TapeReport.predicted_bytes within
    the stated tolerance (prediction is an all-vector upper bound)."""
    profiler = TapeProfiler()
    _assemble(
        mesh, prof_params, prof_velocity, variant, 64, mode="compiled",
        profiler=profiler,
    )
    prof = profiler.profiles[(variant, 64, "compiled", "serial")]
    assert prof.report is not None and prof.executions == 1
    nlane = prof.lanes[0] / prof.executions
    predicted = prof.report.predicted_bytes(nlane)
    measured = prof.total_bytes
    assert measured <= predicted, "measured exceeds the all-vector bound"
    residual = (predicted - measured) / predicted
    assert residual < BYTE_RESIDUAL_TOLERANCE, (
        f"{variant}: byte residual {residual:.3f} exceeds "
        f"{BYTE_RESIDUAL_TOLERANCE}"
    )
    # flops match exactly: every live arithmetic op costs 1 Flop/lane
    assert prof.total_flops == pytest.approx(
        prof.report.predicted_flops(nlane)
    )


def test_interpreted_traffic_exceeds_compiled(mesh, prof_params, prof_velocity):
    """The interpreted path charges per-element ``store`` writes that the
    compiled tape SSA-renames away -- the measured privatization gap."""
    profiler = TapeProfiler()
    _assemble(
        mesh, prof_params, prof_velocity, "RS", 64, mode="compiled",
        profiler=profiler,
    )
    _assemble(
        mesh, prof_params, prof_velocity, "RS", 64, mode="interpreted",
        profiler=profiler,
    )
    compiled = profiler.profiles[("RS", 64, "compiled", "serial")]
    interp = profiler.profiles[("RS", 64, "interpreted", "serial")]
    assert interp.total_bytes > compiled.total_bytes
    # dynamic slots converged: no unfilled placeholders remain
    assert "?" not in interp.kinds


# ---------------------------------------------------------------------------
# Op cost table
# ---------------------------------------------------------------------------


def test_op_costs_from_program(mesh, prof_params):
    tape = compiled_tape(
        get_plan(mesh), "RSP", 32,
        kernel_params=prof_params.as_kernel_params(),
    )
    costs = op_costs_from_program(tape.program)
    assert len(costs) == len(tape.program.ops)
    kinds = {kind for kind, *_ in costs}
    assert kinds <= {"bin", "un", "sel", "gather", "scatter"}
    for kind, label, rb, wb, fl in costs:
        assert wb > 0  # every op writes its output
        assert rb >= 0 and fl >= 0
        assert label
    # report op counts agree with the cost table's kinds
    r = tape.report
    assert sum(1 for k, *_ in costs if k == "bin") == r.binary_ops
    assert sum(1 for k, *_ in costs if k == "un") == r.unary_ops
    assert sum(1 for k, *_ in costs if k == "sel") == r.select_ops
    assert sum(1 for k, *_ in costs if k == "gather") == r.gather_ops
    assert sum(1 for k, *_ in costs if k == "scatter") == r.scatter_calls


# ---------------------------------------------------------------------------
# Zero-cost-off contract
# ---------------------------------------------------------------------------


def test_unprofiled_assembler_records_nothing(mesh, prof_params, prof_velocity):
    """Tapes are plan-cached and shared: a later unprofiled assembler must
    reset the tape's profiler, not inherit the previous one."""
    profiler = TapeProfiler()
    _assemble(mesh, prof_params, prof_velocity, "RS", 16,
              mode="compiled", profiler=profiler)
    prof = profiler.profiles[("RS", 16, "compiled", "serial")]
    executions_before = prof.executions
    # same mesh + variant + vector_dim -> same cached tape, no profiler
    _assemble(mesh, prof_params, prof_velocity, "RS", 16, mode="compiled")
    assert prof.executions == executions_before
    tape = compiled_tape(
        get_plan(mesh), "RS", 16,
        kernel_params=prof_params.as_kernel_params(),
    )
    assert tape.profiler is NULL_PROFILER


def test_null_profiler_contract():
    null = NullProfiler()
    assert not null.enabled
    assert null.snapshot() == []
    assert null.collapsed() == {}
    null.merge([])  # no-op
    null.publish(MetricsRegistry())  # no-op
    with pytest.raises(RuntimeError):
        null.for_program(None, 8)
    with pytest.raises(RuntimeError):
        null.for_kernel("RS", 8)
    with pytest.raises(RuntimeError):
        null.for_elemental(None, 8)


# ---------------------------------------------------------------------------
# Merge / snapshot / publish (the cross-process reduction)
# ---------------------------------------------------------------------------


def _toy_profile(executions=1, executor="serial"):
    prof = TapeProfile(
        "RS", 8, "compiled", executor,
        op_costs=[("bin", "multiply", 16.0, 8.0, 1.0),
                  ("scatter", "rhs[0,0]", 8.0, 8.0, 0.0)],
    )
    for _ in range(executions):
        prof.record(0, 0.5, 8)
        prof.record(1, 0.25, 8)
        prof.record_flush(0.125, 64.0)
        prof.finish_execution()
    return prof


def test_profile_snapshot_roundtrip_and_merge():
    a = _toy_profile(executions=2)
    b = TapeProfile.from_dict(a.to_dict())
    assert b.key() == a.key()
    assert b.total_seconds == a.total_seconds
    assert b.total_bytes == a.total_bytes
    b.merge(a)
    assert b.executions == 4
    assert b.total_bytes == 2 * a.total_bytes
    assert b.flush_bytes == 2 * a.flush_bytes


def test_profile_merge_rejects_different_tapes():
    a = _toy_profile()
    other = TapeProfile(
        "RSP", 8, "compiled",
        op_costs=[("un", "negative", 8.0, 8.0, 1.0)],
    )
    with pytest.raises(ValueError, match="different tapes"):
        a.merge(other)


def test_profiler_merge_folds_worker_snapshots():
    parent = TapeProfiler()
    workers = [TapeProfiler() for _ in range(3)]
    for w in workers:
        prof = w._get(("RS", 8, "compiled", "worker"), _toy_profile)
        assert prof.executions == 1
        parent.merge(w.snapshot())
    merged = parent.profiles[("RS", 8, "compiled", "serial")]
    assert merged.executions == 3
    assert merged.calls[0] == 3


def test_publish_counters_and_phases():
    registry = MetricsRegistry()
    profiler = TapeProfiler()
    profiler._get(("RS", 8, "compiled", "serial"), _toy_profile)
    profiler.publish(registry)
    snap = registry.snapshot()
    assert snap["profile.executions.RS.compiled"]["value"] == 1
    assert snap["profile.seconds.RS.compiled"]["value"] == pytest.approx(0.875)
    # bytes include the flush traffic
    assert snap["profile.bytes.RS.compiled"]["value"] == pytest.approx(
        8 * 24.0 + 8 * 16.0 + 64.0
    )
    assert "profile.phase_seconds.RS.compiled.compute" in snap
    assert "profile.phase_seconds.RS.compiled.flush" in snap


# ---------------------------------------------------------------------------
# Phases, roofline, exports
# ---------------------------------------------------------------------------


def test_phase_breakdown_orders_and_sums(mesh, prof_params, prof_velocity):
    profiler = TapeProfiler()
    _assemble(mesh, prof_params, prof_velocity, "RSPR", 64,
              mode="compiled", profiler=profiler)
    prof = profiler.profiles[("RSPR", 64, "compiled", "serial")]
    phases = prof.phases()
    assert set(phases) <= {"gather", "compute", "select", "store",
                           "scatter", "flush"}
    assert "gather" in phases and "compute" in phases and "flush" in phases
    assert sum(p["seconds"] for p in phases.values()) == pytest.approx(
        prof.total_seconds
    )
    op_phase_bytes = sum(
        p["bytes"] for name, p in phases.items() if name != "flush"
    )
    assert op_phase_bytes == pytest.approx(prof.total_bytes)
    rows = prof.op_rows(top=5)
    assert len(rows) == 5
    assert rows[0]["seconds"] >= rows[-1]["seconds"]


def test_roofline_point_and_attribution(mesh, prof_params, prof_velocity):
    profiler = TapeProfiler()
    _assemble(mesh, prof_params, prof_velocity, "RSP", 64,
              mode="compiled", profiler=profiler)
    prof = profiler.profiles[("RSP", 64, "compiled", "serial")]
    point = prof.roofline_point()
    assert point.label == "RSP"
    assert point.intensity == pytest.approx(prof.intensity)
    roof = gpu_roofline()
    row = roof.attribution(point)
    assert row["limited_by"] in ("memory", "compute")
    assert 0.0 <= row["efficiency"]  # CPU-measured point under a GPU roof
    assert row["attainable"] == roof.attainable(point.intensity)
    assert prof.phase_roofline_points()  # at least one phase point


def test_collapsed_flamegraph_and_trace(tmp_path, mesh, prof_params,
                                        prof_velocity):
    profiler = TapeProfiler()
    _assemble(mesh, prof_params, prof_velocity, "RS", 64,
              mode="compiled", profiler=profiler)
    collapsed = profiler.collapsed()
    assert collapsed
    for stack, usec in collapsed.items():
        assert stack.startswith("tape;RS@vd64[compiled];")
        assert usec >= 1 and isinstance(usec, int)

    path = tmp_path / "flame.txt"
    lines = write_flamegraph(collapsed, str(path))
    assert lines == len([u for u in collapsed.values() if u > 0])
    body = path.read_text()
    for line in body.splitlines():
        stack, weight = line.rsplit(" ", 1)
        assert int(weight) > 0 and ";" in stack

    events = profile_trace_events(profiler.snapshot())
    names = {e["name"] for e in events if e.get("ph") == "X"}
    assert any("#0" in n for n in names)
    assert all(e["dur"] >= 0 for e in events if e.get("ph") == "X")
