"""Span tracer: nesting, timing, attributes, decorator, null behaviour."""

import time

import pytest

from repro.obs import NULL_TRACER, NullTracer, Span, Tracer, get_tracer, set_tracer


def test_span_nesting_parent_child():
    tracer = Tracer(pid=7)
    with tracer.span("outer", variant="RSP") as outer:
        with tracer.span("inner") as inner:
            assert tracer.current is inner
            assert inner.parent_id == outer.span_id
        with tracer.span("inner2") as inner2:
            assert inner2.parent_id == outer.span_id
    assert tracer.current is None

    spans = {s.name: s for s in tracer.finished}
    assert set(spans) == {"outer", "inner", "inner2"}
    assert spans["outer"].parent_id is None
    assert spans["outer"].attributes == {"variant": "RSP"}
    assert all(s.pid == 7 for s in spans.values())


def test_span_timing_monotonic_and_contained():
    tracer = Tracer()
    with tracer.span("outer"):
        with tracer.span("inner"):
            time.sleep(0.01)
    spans = {s.name: s for s in tracer.finished}
    inner, outer = spans["inner"], spans["outer"]
    assert inner.duration >= 0.01
    assert outer.duration >= inner.duration
    assert outer.start <= inner.start
    assert outer.end >= inner.end


def test_span_decorator():
    tracer = Tracer()

    @tracer.span("work", kind="unit")
    def work(x):
        return x + 1

    assert work(1) == 2
    assert work(2) == 3
    spans = tracer.finished
    assert len(spans) == 2
    assert all(s.name == "work" and s.attributes == {"kind": "unit"} for s in spans)


def test_span_records_exception_and_propagates():
    tracer = Tracer()
    with pytest.raises(ValueError):
        with tracer.span("fails"):
            raise ValueError("boom")
    (span,) = tracer.finished
    assert span.attributes["error"] == "ValueError"
    assert span.end is not None


def test_span_dict_round_trip():
    tracer = Tracer(pid=3)
    with tracer.span("a", n=4):
        pass
    d = tracer.export()[0]
    span = Span.from_dict(d)
    assert span.to_dict() == d


def test_add_spans_rebases_ids_and_pid():
    parent = Tracer(pid=0)
    with parent.span("local"):
        pass
    worker = Tracer(pid=999)
    with worker.span("rank"):
        with worker.span("chunk"):
            pass
    parent.add_spans(worker.export(), pid=5)

    spans = parent.finished
    assert len(spans) == 3
    by_name = {s.name: s for s in spans}
    assert by_name["rank"].pid == 5 and by_name["chunk"].pid == 5
    # merged ids don't collide with local ones, child still points at parent
    ids = [s.span_id for s in spans]
    assert len(set(ids)) == 3
    assert by_name["chunk"].parent_id == by_name["rank"].span_id


def test_null_tracer_is_noop():
    null = NullTracer()
    with null.span("anything", x=1) as span:
        assert span is None
    assert null.finished == []
    assert null.export() == []
    assert null.current is None
    assert not null.enabled
    # the handle is shared: no allocation per call
    assert null.span("a") is null.span("b")


def test_null_tracer_decorator_returns_function_unchanged():
    def f(x):
        return x * 2

    assert NULL_TRACER.span("f")(f) is f


def test_default_tracer_get_set():
    assert get_tracer() is NULL_TRACER
    t = Tracer()
    set_tracer(t)
    try:
        assert get_tracer() is t
    finally:
        set_tracer(None)
    assert get_tracer() is NULL_TRACER
