"""Simulated communicator, partitioning, halo exchange, parallel assembly."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fem import box_tet_mesh
from repro.parallel import (
    CommError,
    SimComm,
    assemble_partitioned,
    build_plans,
    element_adjacency,
    greedy_graph_partition,
    partition_quality,
    post_interface,
    rcb_partition,
    reduce_interface,
    run_ranks,
)
from repro.physics import AssemblyParams, assemble_momentum_rhs


# -- communicator -----------------------------------------------------------------


def test_send_recv_roundtrip():
    world = {}
    a = SimComm(0, 2, world)
    b = SimComm(1, 2, world)
    a.send(1, tag=5, payload={"x": 3})
    assert b.recv(0, tag=5) == {"x": 3}


def test_recv_without_send_raises():
    world = {}
    b = SimComm(1, 2, world)
    with pytest.raises(CommError, match="no message"):
        b.recv(0, tag=1)


def test_invalid_ranks():
    with pytest.raises(CommError):
        SimComm(5, 2, {})
    with pytest.raises(CommError):
        SimComm(0, 2, {}).send(7, 0, None)


def test_allreduce_sum():
    results = run_ranks(4, lambda c: c.allreduce_sum(c.rank + 1))
    assert results == [10, 10, 10, 10]


def test_allgather():
    results = run_ranks(3, lambda c: c.allgather(c.rank * 2))
    assert results == [[0, 2, 4]] * 3


# -- partitioning -----------------------------------------------------------------


@pytest.fixture(scope="module")
def mesh():
    return box_tet_mesh(5, 5, 5)


@pytest.mark.parametrize("fn", [rcb_partition, greedy_graph_partition])
@pytest.mark.parametrize("nparts", [1, 2, 3, 8])
def test_partition_covers_and_balances(fn, nparts, mesh):
    labels = fn(mesh, nparts)
    assert labels.shape == (mesh.nelem,)
    assert labels.min() >= 0 and labels.max() == nparts - 1
    q = partition_quality(mesh, labels)
    assert q["nparts"] == nparts
    assert q["imbalance"] < 1.4


def test_rcb_deterministic(mesh):
    assert np.array_equal(rcb_partition(mesh, 4), rcb_partition(mesh, 4))


def test_partition_rejects_zero(mesh):
    with pytest.raises(ValueError):
        rcb_partition(mesh, 0)
    with pytest.raises(ValueError):
        greedy_graph_partition(mesh, 0)


def test_element_adjacency_symmetric(mesh):
    offsets, adj = element_adjacency(mesh)
    pairs = {
        (e, int(n))
        for e in range(mesh.nelem)
        for n in adj[offsets[e] : offsets[e + 1]]
    }
    assert all((b, a) in pairs for (a, b) in pairs)
    # interior tets have 4 face neighbours at most
    assert max(offsets[1:] - offsets[:-1]) <= 4


def test_partition_quality_validates(mesh):
    with pytest.raises(ValueError, match="per element"):
        partition_quality(mesh, np.zeros(3, dtype=int))


# -- halo plans --------------------------------------------------------------------


def test_plans_cover_all_elements(mesh):
    labels = rcb_partition(mesh, 4)
    plans = build_plans(mesh, labels)
    all_eids = np.concatenate([p.element_ids for p in plans])
    assert np.array_equal(np.sort(all_eids), np.arange(mesh.nelem))


def test_interface_nodes_symmetric(mesh):
    labels = rcb_partition(mesh, 3)
    plans = build_plans(mesh, labels)
    for p in plans:
        for nbr, locals_ in p.neighbours.items():
            other = plans[nbr]
            mine = set(p.node_map[locals_])
            theirs = set(other.node_map[other.neighbours[p.rank]])
            assert mine == theirs


def test_halo_exchange_sums(mesh):
    labels = rcb_partition(mesh, 2)
    plans = build_plans(mesh, labels)
    world = {}
    comms = [SimComm(r, 2, world) for r in range(2)]
    fields = [np.full(len(p.node_map), float(p.rank + 1)) for p in plans]
    for c, p, f in zip(comms, plans, fields):
        post_interface(c, p, f)
    out = [
        reduce_interface(c, p, f) for c, p, f in zip(comms, plans, fields)
    ]
    # interface nodes hold 1 + 2 = 3 on both sides
    for p, o in zip(plans, out):
        assert np.allclose(o[p.interface_local], 3.0)
        mask = np.ones(len(p.node_map), dtype=bool)
        mask[p.interface_local] = False
        assert np.allclose(o[mask], p.rank + 1)


# -- partitioned assembly -------------------------------------------------------------


@pytest.mark.parametrize("nranks", [1, 2, 3, 5, 8])
def test_partitioned_assembly_matches_serial(nranks, mesh):
    """The MPI-style reduction must be bit-compatible with serial assembly."""
    params = AssemblyParams(body_force=(0.1, 0.0, -0.2))
    rng = np.random.default_rng(nranks)
    u = 0.1 * rng.standard_normal((mesh.nnode, 3))
    serial = assemble_momentum_rhs(mesh, u, params)
    parallel = assemble_partitioned(mesh, u, params, nranks)
    assert np.abs(parallel - serial).max() < 1e-13


def test_partitioned_assembly_with_graph_partition(mesh):
    params = AssemblyParams()
    rng = np.random.default_rng(9)
    u = 0.1 * rng.standard_normal((mesh.nnode, 3))
    labels = greedy_graph_partition(mesh, 4)
    parallel = assemble_partitioned(mesh, u, params, 4, labels=labels)
    serial = assemble_momentum_rhs(mesh, u, params)
    assert np.allclose(parallel, serial, atol=1e-13)


@settings(max_examples=8, deadline=None)
@given(nranks=st.integers(1, 6), seed=st.integers(0, 100))
def test_property_partitioned_assembly(nranks, seed):
    mesh = box_tet_mesh(3, 3, 3)
    params = AssemblyParams()
    rng = np.random.default_rng(seed)
    u = 0.2 * rng.standard_normal((mesh.nnode, 3))
    assert np.allclose(
        assemble_partitioned(mesh, u, params, nranks),
        assemble_momentum_rhs(mesh, u, params),
        atol=1e-12,
    )


def test_partitioned_assembly_bitwise_unchanged_by_plan_scatter(mesh):
    """The precomputed-scatter local reduction must reproduce the seed
    ``np.add.at`` pipeline bit for bit (same partition, same halo order)."""
    from repro.physics.momentum import element_rhs

    params = AssemblyParams(body_force=(0.0, 0.3, -0.1))
    rng = np.random.default_rng(21)
    u = 0.1 * rng.standard_normal((mesh.nnode, 3))
    nranks = 4
    labels = rcb_partition(mesh, nranks)

    # seed-style reference: identical driver, np.add.at local scatter
    plans = build_plans(mesh, labels)
    world = {}
    comms = [SimComm(r, nranks, world) for r in range(nranks)]
    partials = []
    for comm, plan in zip(comms, plans):
        xel = mesh.coords[mesh.connectivity[plan.element_ids]]
        uel = u[mesh.connectivity[plan.element_ids]]
        elem = element_rhs(xel, uel, params)
        local = np.zeros((len(plan.node_map), 3))
        np.add.at(local, plan.local_connectivity.ravel(), elem.reshape(-1, 3))
        partials.append(local)
        post_interface(comm, plan, local)
    for i, (comm, plan) in enumerate(zip(comms, plans)):
        partials[i] = reduce_interface(comm, plan, partials[i])
    ref = np.zeros((mesh.nnode, 3))
    filled = np.zeros(mesh.nnode, dtype=bool)
    for plan in plans:
        sel = ~filled[plan.node_map]
        ref[plan.node_map[sel]] = partials[plan.rank][sel]
        filled[plan.node_map[sel]] = True

    got = assemble_partitioned(mesh, u, params, nranks, labels=labels)
    assert np.array_equal(got, ref)


# -- multiprocess runner baseline -------------------------------------------------


def test_runner_baseline_is_smallest_worker_count():
    """measure() must normalize to the smallest worker count even when it
    is not listed first (the seed silently used the first entry)."""
    from repro.parallel import MultiprocessRunner

    mesh = box_tet_mesh(3, 3, 3)
    runner = MultiprocessRunner(mesh, AssemblyParams(), repeats=1)
    points = runner.measure([2, 1])
    assert [p.workers for p in points] == [2, 1]
    assert all(p.baseline_workers == 1 for p in points)
    one = next(p for p in points if p.workers == 1)
    two = next(p for p in points if p.workers == 2)
    assert one.speedup == pytest.approx(1.0)
    assert one.efficiency == pytest.approx(1.0)
    assert two.speedup == pytest.approx(one.wall_seconds / two.wall_seconds)
    assert two.efficiency == pytest.approx(two.speedup / 2.0)


def test_runner_shares_element_arrays_via_shm():
    from repro.obs.metrics import MetricsRegistry
    from repro.parallel import MultiprocessRunner

    mesh = box_tet_mesh(3, 3, 3)
    registry = MetricsRegistry()
    runner = MultiprocessRunner(
        mesh, AssemblyParams(), repeats=1, metrics=registry
    )
    points = runner.measure([1, 2])
    assert len(points) == 2
    snap = registry.snapshot()
    # both packed arrays shared once, regardless of how many counts ran
    assert snap["runner.shm_bytes_shared"]["value"] == 2 * mesh.nelem * 4 * 3 * 8
    # the 2-worker point avoided pickling both packs
    assert snap["runner.pickle_bytes_saved"]["value"] == 2 * mesh.nelem * 4 * 3 * 8


# -- locality: halo/interior split, SFC partition, overlap --------------------


def test_halo_interior_split_partitions_elements(mesh):
    labels = rcb_partition(mesh, 4)
    for plan in build_plans(mesh, labels):
        h, i = plan.halo_elements, plan.interior_elements
        assert np.intersect1d(h, i).size == 0
        assert np.array_equal(
            np.sort(np.concatenate([h, i])),
            np.arange(len(plan.element_ids)),
        )
        # every halo element touches an interface node, no interior does
        iface = np.zeros(len(plan.node_map), dtype=bool)
        iface[plan.interface_local] = True
        assert iface[plan.local_connectivity[h]].any(axis=1).all()
        if i.size:
            assert not iface[plan.local_connectivity[i]].any(axis=1).any()


def test_single_rank_has_no_halo(mesh):
    (plan,) = build_plans(mesh, np.zeros(mesh.nelem, dtype=np.int64))
    assert plan.halo_elements.size == 0
    assert plan.interior_elements.size == mesh.nelem


def test_overlap_records_locality_metrics(mesh):
    from repro.obs.metrics import MetricsRegistry

    params = AssemblyParams()
    rng = np.random.default_rng(5)
    u = 0.1 * rng.standard_normal((mesh.nnode, 3))
    registry = MetricsRegistry()
    assemble_partitioned(mesh, u, params, 4, metrics=registry)
    snap = registry.snapshot()
    halo = snap["locality.halo_elements"]["value"]
    interior = snap["locality.interior_elements"]["value"]
    assert halo > 0 and interior > 0
    assert halo + interior == mesh.nelem
    assert 0.0 < snap["locality.overlap_efficiency"]["value"] < 1.0


def test_overlap_emits_halo_and_interior_spans(mesh):
    from repro.obs import Tracer

    params = AssemblyParams()
    rng = np.random.default_rng(6)
    u = 0.1 * rng.standard_normal((mesh.nnode, 3))
    tracer = Tracer()
    assemble_partitioned(mesh, u, params, 2, tracer=tracer)
    names = [s["name"] for s in tracer.export()]
    assert names.count("halo_assemble") == 2
    assert names.count("interior_assemble") == 2


def test_sfc_partition_balanced_and_correct(mesh):
    from repro.parallel import sfc_partition

    params = AssemblyParams()
    rng = np.random.default_rng(7)
    u = 0.1 * rng.standard_normal((mesh.nnode, 3))
    serial = assemble_momentum_rhs(mesh, u, params)
    for nparts in (2, 5):
        for strategy in ("hilbert", "morton"):
            labels = sfc_partition(mesh, nparts, strategy)
            counts = np.bincount(labels, minlength=nparts)
            assert counts.max() - counts.min() <= 1
            got = assemble_partitioned(mesh, u, params, nparts, labels=labels)
            assert np.abs(got - serial).max() < 1e-13
    with pytest.raises(ValueError, match="nparts"):
        sfc_partition(mesh, 0)


def test_runner_rejects_unknown_ordering():
    from repro.parallel import MultiprocessRunner

    with pytest.raises(ValueError, match="ordering"):
        MultiprocessRunner(
            box_tet_mesh(3, 3, 3), AssemblyParams(), ordering="zigzag"
        )


def test_runner_sfc_ordering_single_worker():
    from repro.obs.metrics import MetricsRegistry
    from repro.parallel import MultiprocessRunner

    mesh = box_tet_mesh(3, 3, 3)
    registry = MetricsRegistry()
    runner = MultiprocessRunner(
        mesh, AssemblyParams(), repeats=1, metrics=registry,
        ordering="hilbert",
    )
    points = runner.measure([1])
    assert len(points) == 1
    assert registry.snapshot()["locality.runner_reorders"]["value"] == 1


def test_runner_profiled_rank_folds_into_parent():
    """Profiled compiled runner: per-rank op profiles return with the
    results and fold into the parent profiler + metrics registry (the
    w==1 path runs in-process, so no spawn pool is needed)."""
    from repro.obs.metrics import MetricsRegistry
    from repro.parallel import MultiprocessRunner

    mesh = box_tet_mesh(3, 3, 3)
    params = AssemblyParams(body_force=(0.0, 0.0, 0.1))
    plain = MultiprocessRunner(
        mesh, params, repeats=1, assembly_mode="compiled", variant="RS"
    )
    plain.measure([1])

    registry = MetricsRegistry()
    runner = MultiprocessRunner(
        mesh, params, repeats=1, assembly_mode="compiled", variant="RS",
        metrics=registry, profile=True,
    )
    runner.measure([1])
    # profiled chunk checksums match the unprofiled run bit-for-bit
    assert runner.chunk_checksums[1] == plain.chunk_checksums[1]
    prof = runner.profiler.profiles[("RS", mesh.nelem, "elemental", "worker")]
    assert prof.executions == 1  # repeats=1, one rank
    assert prof.total_seconds > 0 and prof.total_bytes > 0
    snap = registry.snapshot()
    assert snap["profile.executions.RS.elemental"]["value"] == 1
    assert snap["profile.bytes.RS.elemental"]["value"] > 0


def test_runner_profile_requires_compiled_mode():
    from repro.parallel import MultiprocessRunner

    mesh = box_tet_mesh(3, 3, 3)
    with pytest.raises(ValueError, match="compiled"):
        MultiprocessRunner(
            mesh, AssemblyParams(), assembly_mode="reference", profile=True
        )
