"""Graceful-shutdown guarantees for the standalone runner.

The hard requirement: no matter how a sweep ends -- completion,
cooperative cancel, SIGTERM -- ``/dev/shm`` holds **zero** ``repro_<pid>_*``
segments afterwards.  Segments live in the kernel, not the process, so a
leak here survives until reboot.
"""

import glob
import os
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.fem.meshgen import box_tet_mesh
from repro.parallel import (
    SHM_PREFIX,
    create_shared_memory,
    install_shutdown_handler,
    live_segment_names,
    purge_shared_memory,
    release_shared_memory,
)
from repro.parallel.runner import MultiprocessRunner
from repro.physics.momentum import AssemblyParams
from repro.resilience.cancel import CancelToken, CooperativeCancel

pytestmark = pytest.mark.skipif(
    not os.path.isdir("/dev/shm"), reason="needs a POSIX /dev/shm"
)


def _dev_shm(pid):
    return glob.glob(f"/dev/shm/{SHM_PREFIX}_{pid}_*")


# ---------------------------------------------------------------------------
# unit: tracked segments
# ---------------------------------------------------------------------------

def test_create_release_tracks_registry_and_dev_shm():
    shm = create_shared_memory(1024)
    assert shm.name.startswith(f"{SHM_PREFIX}_{os.getpid()}_")
    assert shm.name in live_segment_names()
    assert os.path.exists(f"/dev/shm/{shm.name}")
    release_shared_memory(shm)
    assert shm.name not in live_segment_names()
    assert not os.path.exists(f"/dev/shm/{shm.name}")
    release_shared_memory(shm)  # idempotent


def test_purge_unlinks_everything_still_registered():
    names = [create_shared_memory(256).name for _ in range(3)]
    purged = purge_shared_memory()
    assert set(names) <= set(purged)
    assert live_segment_names() == []
    for name in names:
        assert not os.path.exists(f"/dev/shm/{name}")
    assert purge_shared_memory() == []  # nothing left


def test_install_shutdown_handler_converts_sigterm():
    previous = install_shutdown_handler()
    try:
        with pytest.raises(KeyboardInterrupt):
            os.kill(os.getpid(), signal.SIGTERM)
    finally:
        signal.signal(signal.SIGTERM, previous)


def test_install_shutdown_handler_noop_off_main_thread():
    import threading

    out = []
    t = threading.Thread(target=lambda: out.append(install_shutdown_handler()))
    t.start()
    t.join()
    assert out == [None]


# ---------------------------------------------------------------------------
# cooperative cancel: the finally path releases every segment
# ---------------------------------------------------------------------------

def test_cancelled_measure_releases_all_segments():
    runner = MultiprocessRunner(box_tet_mesh(2, 2, 2), AssemblyParams(),
                                repeats=1)
    token = CancelToken()
    token.cancel("drain")
    before = set(_dev_shm(os.getpid()))
    with pytest.raises(CooperativeCancel):
        runner.measure([1], cancel=token)
    runner.close()
    assert live_segment_names() == []
    assert set(_dev_shm(os.getpid())) == before


def test_close_is_idempotent_and_completed_sweep_is_clean():
    runner = MultiprocessRunner(box_tet_mesh(2, 2, 2), AssemblyParams(),
                                repeats=1)
    points = runner.measure([1])
    assert len(points) == 1 and np.isfinite(points[0].wall_seconds)
    assert live_segment_names() == []
    assert _dev_shm(os.getpid()) == []
    runner.close()
    runner.close()


# ---------------------------------------------------------------------------
# SIGTERM mid-sweep in a real subprocess: nothing leaks
# ---------------------------------------------------------------------------

_CHILD = r"""
import sys
from repro.fem.meshgen import box_tet_mesh
from repro.parallel import install_shutdown_handler
from repro.parallel.runner import MultiprocessRunner
from repro.physics.momentum import AssemblyParams

install_shutdown_handler()
runner = MultiprocessRunner(
    box_tet_mesh(6, 6, 6), AssemblyParams(), repeats=100000
)
try:
    runner.measure([2])
except KeyboardInterrupt:
    print("INTERRUPTED", flush=True)
    sys.exit(0)
print("FINISHED", flush=True)
"""


def test_sigterm_mid_sweep_leaves_no_shm_blocks():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    proc = subprocess.Popen(
        [sys.executable, "-c", _CHILD],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, env=env, text=True,
    )
    try:
        # wait for the sweep's segments to appear, then pull the plug
        deadline = time.monotonic() + 120
        while not _dev_shm(proc.pid):
            if proc.poll() is not None or time.monotonic() > deadline:
                out, err = proc.communicate(timeout=10)
                raise AssertionError(
                    f"child never created segments: {out!r} {err!r}"
                )
            time.sleep(0.05)
        proc.send_signal(signal.SIGTERM)
        out, err = proc.communicate(timeout=120)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate(timeout=30)
    assert "INTERRUPTED" in out, (out, err)
    assert proc.returncode == 0, (proc.returncode, err)
    leaked = _dev_shm(proc.pid)
    assert leaked == [], f"leaked /dev/shm segments: {leaked}"
