"""Momentum assembly reference implementation and convective forms."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.physics import (
    AssemblyParams,
    ConvectiveForm,
    TurbulenceModel,
    assemble_momentum_rhs,
    convective_term,
    element_rhs,
)
from repro.physics.convection import advective, divergence_form, emac, skew_symmetric
from repro.fem import box_tet_mesh


# -- convective forms ------------------------------------------------------------


def _rand(seed):
    rng = np.random.default_rng(seed)
    return rng.standard_normal(3), rng.standard_normal((3, 3))


def test_forms_agree_for_divergence_free():
    u, g = _rand(0)
    g = g - np.trace(g) / 3.0 * np.eye(3)  # make trace-free
    adv = advective(u, g)
    assert np.allclose(skew_symmetric(u, g), adv)
    assert np.allclose(divergence_form(u, g), adv)


def test_skew_between_advective_and_divergence():
    u, g = _rand(1)
    adv = advective(u, g)
    div = divergence_form(u, g)
    skew = skew_symmetric(u, g)
    assert np.allclose(skew, 0.5 * (adv + div))


def test_emac_for_symmetric_gradient():
    u, g = _rand(2)
    gs = 0.5 * (g + g.T)
    # for symmetric g: 2 S u = 2 g u -> emac = 2 g u + tr(g) u
    expected = 2.0 * gs @ u + np.trace(gs) * u
    assert np.allclose(emac(u, gs), expected)


def test_dispatch_matches_direct():
    u, g = _rand(3)
    for form, fn in [
        (ConvectiveForm.ADVECTIVE, advective),
        (ConvectiveForm.SKEW_SYMMETRIC, skew_symmetric),
        (ConvectiveForm.DIVERGENCE, divergence_form),
        (ConvectiveForm.EMAC, emac),
    ]:
        assert np.allclose(convective_term(form, u, g), fn(u, g))


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 500))
def test_advective_is_bilinear_in_u(seed):
    u, g = _rand(seed)
    assert np.allclose(advective(2.0 * u, g), 2.0 * advective(u, g))
    assert np.allclose(advective(u, 3.0 * g), 3.0 * advective(u, g))


# -- element / global assembly -----------------------------------------------------


def test_element_rhs_shape(small_mesh, params):
    xel = small_mesh.element_coords()
    uel = np.zeros((small_mesh.nelem, 4, 3))
    out = element_rhs(xel, uel, params)
    assert out.shape == (small_mesh.nelem, 4, 3)


def test_assembly_linear_in_force(small_mesh):
    u = np.zeros((small_mesh.nnode, 3))
    r1 = assemble_momentum_rhs(
        small_mesh, u, AssemblyParams(body_force=(1.0, 0.0, 0.0))
    )
    r2 = assemble_momentum_rhs(
        small_mesh, u, AssemblyParams(body_force=(2.0, 0.0, 0.0))
    )
    assert np.allclose(r2, 2.0 * r1)


def test_assembly_galilean_force_balance(small_mesh):
    """Total force = rho * f * V (momentum conservation of the force term)."""
    u = np.zeros((small_mesh.nnode, 3))
    p = AssemblyParams(body_force=(0.3, -0.7, 1.1), density=1.0)
    rhs = assemble_momentum_rhs(small_mesh, u, p)
    total = rhs.sum(axis=0)
    vol = small_mesh.total_volume()
    assert np.allclose(total, np.array(p.body_force) * vol, rtol=1e-12)


def test_viscous_term_sign_dissipative(medium_mesh):
    """u . RHS_viscous <= 0: viscosity extracts kinetic energy."""
    p = AssemblyParams(
        body_force=(0, 0, 0),
        viscosity=1e-3,
        turbulence_model=TurbulenceModel.NONE,
    )
    rng = np.random.default_rng(4)
    u = rng.standard_normal((medium_mesh.nnode, 3))
    # linear-velocity fields have zero convection power on average; use
    # a pure shear to isolate viscosity:
    u = np.zeros((medium_mesh.nnode, 3))
    u[:, 0] = medium_mesh.coords[:, 2] ** 2  # du/dz varies
    rhs = assemble_momentum_rhs(medium_mesh, u, p)
    power = float((u * rhs).sum())
    assert power < 0.0


def test_turbulent_viscosity_increases_dissipation(medium_mesh):
    u = np.zeros((medium_mesh.nnode, 3))
    # multi-directional gradients so the Vreman viscosity is active
    u[:, 0] = np.sin(2 * np.pi * medium_mesh.coords[:, 2])
    u[:, 1] = np.sin(2 * np.pi * medium_mesh.coords[:, 0])
    u[:, 2] = np.sin(2 * np.pi * medium_mesh.coords[:, 1])
    base = AssemblyParams(body_force=(0, 0, 0),
                          turbulence_model=TurbulenceModel.NONE)
    vreman = AssemblyParams(body_force=(0, 0, 0),
                            turbulence_model=TurbulenceModel.VREMAN)
    p_base = float((u * assemble_momentum_rhs(medium_mesh, u, base)).sum())
    p_vre = float((u * assemble_momentum_rhs(medium_mesh, u, vreman)).sum())
    assert p_vre < p_base < 0.0


def test_assembly_rejects_bad_velocity(small_mesh, params):
    with pytest.raises(ValueError, match="velocity"):
        assemble_momentum_rhs(small_mesh, np.zeros((2, 3)), params)


def test_constant_velocity_zero_rhs_without_force(small_mesh):
    p = AssemblyParams(body_force=(0.0, 0.0, 0.0))
    u = np.tile([1.0, 2.0, 3.0], (small_mesh.nnode, 1))
    rhs = assemble_momentum_rhs(small_mesh, u, p)
    assert np.abs(rhs).max() < 1e-13


def test_kernel_params_roundtrip():
    p = AssemblyParams(density=2.0, viscosity=3e-4, body_force=(1, 2, 3))
    d = p.as_kernel_params()
    assert d["density"] == 2.0
    assert d["force_y"] == 2
    assert d["turbulence_model"] == int(TurbulenceModel.VREMAN)
