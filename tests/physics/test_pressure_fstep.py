"""Pressure-Poisson solver and the fractional-step integrator."""

import numpy as np
import pytest

from repro.fem import DirichletBC, box_tet_mesh, classify_box_boundaries
from repro.physics import AssemblyParams
from repro.physics.fractional_step import (
    FractionalStepSolver,
    cfl_time_step,
)
from repro.physics.pressure import (
    PressureSolver,
    assemble_laplacian,
    divergence_rhs,
)


@pytest.fixture(scope="module")
def mesh():
    return box_tet_mesh(5, 5, 5)


@pytest.fixture(scope="module")
def laplacian(mesh):
    return assemble_laplacian(mesh)


def test_laplacian_symmetric(laplacian):
    assert abs(laplacian - laplacian.T).max() < 1e-13


def test_laplacian_rowsums_zero(laplacian):
    """Constants are in the nullspace (pure Neumann)."""
    ones = np.ones(laplacian.shape[0])
    assert np.abs(laplacian @ ones).max() < 1e-12


def test_laplacian_psd(laplacian):
    rng = np.random.default_rng(0)
    for _ in range(5):
        v = rng.standard_normal(laplacian.shape[0])
        assert v @ (laplacian @ v) >= -1e-10


def test_divergence_rhs_zero_for_uniform_flow(mesh):
    u = np.tile([1.0, -2.0, 0.5], (mesh.nnode, 1))
    rhs = divergence_rhs(mesh, u, density=1.0, dt=0.1)
    assert np.abs(rhs).max() < 1e-12


def test_divergence_rhs_sums_to_boundary_flux(mesh):
    """sum_a rhs_a = -(rho/dt) int div u (the flux, with the K-form sign)."""
    u = np.zeros((mesh.nnode, 3))
    u[:, 0] = mesh.coords[:, 0]  # div u = 1
    rhs = divergence_rhs(mesh, u, density=2.0, dt=0.5)
    assert rhs.sum() == pytest.approx(-2.0 / 0.5 * 1.0, rel=1e-12)


def test_pressure_solver_manufactured(mesh, laplacian):
    """Solve K p = K p_true and recover p_true up to a constant."""
    ps = PressureSolver(mesh, tol=1e-10)
    rng = np.random.default_rng(1)
    p_true = rng.standard_normal(mesh.nnode)
    p_true -= p_true.mean()
    # build a velocity whose divergence RHS equals K p_true is hard;
    # instead test the internal CG through a direct solve call path:
    from repro.solvers import conjugate_gradient

    res = conjugate_gradient(
        laplacian,
        laplacian @ p_true,
        tol=1e-12,
        maxiter=2000,
        preconditioner=ps._amg.as_preconditioner(),
    )
    assert res.converged
    err = res.x - res.x.mean() - p_true
    assert np.abs(err).max() < 1e-7


def test_pressure_solve_reduces_divergence(mesh):
    ps = PressureSolver(mesh, tol=1e-9)
    rng = np.random.default_rng(2)
    u = 0.1 * rng.standard_normal((mesh.nnode, 3))
    res = ps.solve(u, density=1.0, dt=0.05)
    assert res.converged
    assert abs(res.x.mean()) < 1e-10  # zero-mean pressure


def test_amg_vs_jacobi_iterations(mesh):
    """AMG preconditioning must beat Jacobi on iteration count."""
    rng = np.random.default_rng(3)
    u = 0.1 * rng.standard_normal((mesh.nnode, 3))
    amg_iters = PressureSolver(mesh, use_amg=True).solve(u, 1.0, 0.05).iterations
    jac_iters = PressureSolver(mesh, use_amg=False).solve(u, 1.0, 0.05).iterations
    assert amg_iters < jac_iters


def test_pressure_gradient_of_linear_field(mesh):
    ps = PressureSolver(mesh, use_amg=False)
    p = 2.0 * mesh.coords[:, 0] - mesh.coords[:, 2]
    g = ps.pressure_gradient(p)
    assert np.allclose(g[:, 0], 2.0, atol=1e-10)
    assert np.allclose(g[:, 1], 0.0, atol=1e-10)
    assert np.allclose(g[:, 2], -1.0, atol=1e-10)


# -- fractional step ---------------------------------------------------------------


def test_cfl_time_step_scales(mesh):
    u = np.tile([2.0, 0.0, 0.0], (mesh.nnode, 1))
    dt1 = cfl_time_step(mesh, u, cfl=0.5)
    dt2 = cfl_time_step(mesh, 2.0 * u, cfl=0.5)
    assert dt2 == pytest.approx(dt1 / 2.0)
    assert cfl_time_step(mesh, np.zeros_like(u)) > 0


def _solver(mesh, force=(0.0, 0.0, 0.0)):
    regions = classify_box_boundaries(mesh)
    bcs = [DirichletBC(regions["zmin"].nodes, np.zeros(3))]
    return FractionalStepSolver(
        mesh,
        AssemblyParams(body_force=force),
        dirichlet=bcs,
        pressure_solver=PressureSolver(mesh, tol=1e-7),
    )


def test_step_advances_time(mesh):
    s = _solver(mesh)
    s.advance(0.01)
    s.advance(0.02)
    assert s.time == pytest.approx(0.03)
    assert s.step_count == 2
    assert len(s.history) == 2


def test_step_rejects_bad_dt(mesh):
    with pytest.raises(ValueError, match="dt"):
        _solver(mesh).advance(0.0)


def test_zero_state_stays_zero_without_forcing(mesh):
    s = _solver(mesh)
    s.run(2, dt=0.01)
    assert np.abs(s.velocity).max() < 1e-12
    assert s.kinetic_energy() == pytest.approx(0.0, abs=1e-15)


def test_force_accelerates_flow(mesh):
    s = _solver(mesh, force=(0.1, 0.0, 0.0))
    reps = s.run(3, dt=0.05)
    ke = [r.kinetic_energy for r in reps]
    assert ke[0] < ke[1] < ke[2]
    assert reps[-1].max_velocity > 0


def test_dirichlet_enforced_every_step(mesh):
    s = _solver(mesh, force=(0.2, 0.0, 0.0))
    s.run(2, dt=0.05)
    regions = classify_box_boundaries(mesh)
    assert np.abs(s.velocity[regions["zmin"].nodes]).max() < 1e-14


def test_unforced_taylor_green_decays(mesh):
    """A divergence-free Taylor-Green vortex must lose energy unforced."""
    s = _solver(mesh)
    x, _, z = mesh.coords.T
    k = 2.0 * np.pi
    u0 = np.zeros((mesh.nnode, 3))
    amp = 0.05
    u0[:, 0] = amp * np.sin(k * x) * np.cos(k * z)
    u0[:, 2] = -amp * np.cos(k * x) * np.sin(k * z)
    s.set_velocity(u0)
    e0 = s.kinetic_energy()
    reps = s.run(3, dt=0.02)
    energies = [r.kinetic_energy for r in reps]
    assert energies[-1] < e0
    assert energies == sorted(energies, reverse=True)


def test_timing_breakdown(mesh):
    s = _solver(mesh, force=(0.1, 0.0, 0.0))
    s.run(2, dt=0.02)
    bd = s.timing_breakdown()
    assert 0.0 < bd["assembly_fraction"] < 1.0
    assert bd["assembly_seconds"] > 0


def test_set_velocity_validates(mesh):
    with pytest.raises(ValueError, match="velocity"):
        _solver(mesh).set_velocity(np.zeros((5, 3)))
