"""Turbulence models and material laws."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.physics import (
    AIR,
    Material,
    MaterialLaw,
    TurbulenceModel,
    WATER,
    eddy_viscosity,
    evaluate_material,
    smagorinsky_viscosity,
    vreman_viscosity,
    wale_viscosity,
)

_grad = st.lists(
    st.floats(-10, 10, allow_nan=False), min_size=9, max_size=9
).map(lambda v: np.array(v).reshape(3, 3))


# -- Vreman --------------------------------------------------------------------


def test_vreman_zero_for_zero_gradient():
    assert vreman_viscosity(np.zeros((3, 3)), np.array(1.0)) == 0.0


@settings(max_examples=60, deadline=None)
@given(g=_grad, d2=st.floats(1e-6, 10.0))
def test_vreman_nonnegative(g, d2):
    nu = vreman_viscosity(g[None], np.array([d2]))
    assert nu[0] >= 0.0
    assert np.isfinite(nu[0])


def test_vreman_vanishes_for_unidirectional_shear():
    """Vreman's defining property: nu_t = 0 when the gradient is confined
    to a single direction (beta becomes rank-1, so B_beta = 0)."""
    g = np.zeros((3, 3))
    g[0, 1] = 2.0  # du/dy
    g[2, 1] = 1.0  # dw/dy -- still a single gradient direction
    nu = vreman_viscosity(g[None], np.array([1.0]))
    assert nu[0] == pytest.approx(0.0, abs=1e-12)


def test_vreman_positive_for_solid_rotation():
    """Unlike Smagorinsky's |S|, Vreman does not vanish for rotation."""
    w = np.array([[0, 1, 0], [-1, 0, 0], [0, 0, 0]], dtype=float)
    nu = vreman_viscosity(w[None], np.array([1.0]))
    assert nu[0] > 0.0


def test_vreman_scales_with_delta2():
    g = np.zeros((3, 3))
    g[0, 1] = 1.0
    g[1, 2] = 0.5
    n1 = vreman_viscosity(g[None], np.array([1.0]))
    n4 = vreman_viscosity(g[None], np.array([4.0]))
    assert n4[0] == pytest.approx(4.0 * n1[0], rel=1e-10)


def test_vreman_gradient_scaling_linear():
    """nu_t(k g) = k nu_t(g): B_beta ~ g^4, aa ~ g^2, sqrt -> linear."""
    rng = np.random.default_rng(0)
    g = rng.standard_normal((3, 3))
    n1 = vreman_viscosity(g[None], np.array([1.0]))
    n3 = vreman_viscosity((3.0 * g)[None], np.array([1.0]))
    assert n3[0] == pytest.approx(3.0 * n1[0], rel=1e-9)


# -- Smagorinsky / WALE ----------------------------------------------------------


@settings(max_examples=40, deadline=None)
@given(g=_grad)
def test_smagorinsky_nonnegative(g):
    assert smagorinsky_viscosity(g[None], np.array([1.0]))[0] >= 0.0


def test_smagorinsky_pure_shear_value():
    g = np.zeros((3, 3))
    g[0, 1] = 1.0
    # |S| = sqrt(2 * (0.5^2 * 2)) = 1
    nu = smagorinsky_viscosity(g[None], np.array([1.0]), cs=0.17)
    assert nu[0] == pytest.approx(0.17**2, rel=1e-12)


@settings(max_examples=40, deadline=None)
@given(g=_grad)
def test_wale_nonnegative_finite(g):
    nu = wale_viscosity(g[None], np.array([1.0]))
    assert nu[0] >= 0.0 and np.isfinite(nu[0])


def test_wale_zero_for_pure_shear():
    """WALE is designed to vanish in pure shear (wall behaviour)."""
    g = np.zeros((3, 3))
    g[0, 1] = 1.0
    assert wale_viscosity(g[None], np.array([1.0]))[0] == pytest.approx(
        0.0, abs=1e-12
    )


# -- dispatch --------------------------------------------------------------------


def test_eddy_viscosity_dispatch():
    g = np.random.default_rng(1).standard_normal((5, 3, 3))
    d2 = np.ones(5)
    assert np.allclose(
        eddy_viscosity(TurbulenceModel.NONE, g, d2), 0.0
    )
    assert np.allclose(
        eddy_viscosity(1, g, d2), vreman_viscosity(g, d2)
    )
    assert np.allclose(
        eddy_viscosity(TurbulenceModel.WALE, g, d2), wale_viscosity(g, d2)
    )


# -- materials --------------------------------------------------------------------


def test_constant_material():
    rho, nu = evaluate_material(AIR)
    assert float(rho) == pytest.approx(1.204)
    assert float(nu) == pytest.approx(1.516e-5)
    assert AIR.dynamic_viscosity == pytest.approx(1.204 * 1.516e-5)


def test_sutherland_viscosity_increases_with_temperature():
    mat = Material(
        "hot air", 1.0, 1e-5, law=MaterialLaw.SUTHERLAND,
        reference_temperature=300.0,
    )
    t = np.array([250.0, 300.0, 400.0])
    rho, nu = evaluate_material(mat, t)
    assert nu[1] == pytest.approx(1e-5, rel=1e-12)
    assert nu[0] < nu[1] < nu[2]
    assert np.allclose(rho, 1.0)


def test_boussinesq_density_decreases_with_temperature():
    mat = Material(
        "warm water", 1000.0, 1e-6, law=MaterialLaw.BOUSSINESQ,
        reference_temperature=293.0, expansion_coefficient=2e-4,
    )
    t = np.array([283.0, 293.0, 303.0])
    rho, _ = evaluate_material(mat, t)
    assert rho[1] == pytest.approx(1000.0)
    assert rho[0] > rho[1] > rho[2]


def test_water_constants():
    assert WATER.density > AIR.density
