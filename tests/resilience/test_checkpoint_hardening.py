"""Checkpoint hardening: corrupt/truncated ``.npz`` never strands a run.

The contract: :func:`load_checkpoint` turns every decode failure into a
structured :class:`CheckpointError`; :meth:`FractionalStepSolver.checkpoint`
keeps the last two generations; :meth:`restart_latest` skips an unreadable
newest generation (counting ``resilience.checkpoint_fallbacks``) and
restores the previous one bitwise.
"""

import os

import numpy as np
import pytest

from repro.fem.meshgen import box_tet_mesh
from repro.obs.metrics import get_registry
from repro.physics.fractional_step import FractionalStepSolver
from repro.physics.momentum import AssemblyParams
from repro.resilience.checkpoint import (
    CheckpointError,
    checkpoint_name,
    list_checkpoints,
    load_checkpoint,
    prune_checkpoints,
    save_checkpoint,
)


def _count(name):
    snap = get_registry().snapshot().get(name)
    return 0 if snap is None else snap["value"]


def _solver(tmp_path, **kw):
    mesh = box_tet_mesh(2, 2, 2)
    solver = FractionalStepSolver(
        mesh, AssemblyParams(), checkpoint_dir=str(tmp_path), **kw
    )
    rng = np.random.default_rng(7)
    solver.velocity = 0.1 * rng.standard_normal((mesh.nnode, 3))
    solver._apply_bcs(solver.velocity)
    return solver


# ---------------------------------------------------------------------------
# load_checkpoint: every corruption is a structured CheckpointError
# ---------------------------------------------------------------------------

@pytest.mark.parametrize(
    "corruption",
    ["truncate_half", "truncate_tail", "zero_bytes", "garbage", "empty"],
)
def test_corrupt_files_raise_structured_checkpoint_error(tmp_path, corruption):
    solver = _solver(tmp_path)
    path = solver.checkpoint()
    raw = open(path, "rb").read()
    assert len(raw) > 64
    if corruption == "truncate_half":
        open(path, "wb").write(raw[: len(raw) // 2])
    elif corruption == "truncate_tail":
        open(path, "wb").write(raw[:-16])
    elif corruption == "zero_bytes":
        open(path, "wb").write(b"\x00" * len(raw))
    elif corruption == "garbage":
        open(path, "wb").write(b"this is not an npz archive")
    elif corruption == "empty":
        open(path, "wb").write(b"")
    with pytest.raises(CheckpointError) as err:
        load_checkpoint(path)
    assert path in str(err.value)


def test_missing_file_and_wrong_mesh_are_checkpoint_errors(tmp_path):
    with pytest.raises(CheckpointError):
        load_checkpoint(str(tmp_path / "nope.npz"))
    solver = _solver(tmp_path)
    path = solver.checkpoint()
    state = load_checkpoint(path)
    with pytest.raises(CheckpointError):
        state.validate_against(state.nnode + 1, state.nelem)


def test_save_refuses_non_finite_state(tmp_path):
    solver = _solver(tmp_path)
    solver.velocity[0, 0] = np.nan
    with pytest.raises(CheckpointError):
        solver.checkpoint()
    assert list_checkpoints(str(tmp_path)) == []


# ---------------------------------------------------------------------------
# generations: keep-last-2 pruning
# ---------------------------------------------------------------------------

def test_auto_checkpoints_keep_last_two_generations(tmp_path):
    solver = _solver(tmp_path, checkpoint_every=1)
    solver.run(4, dt=1e-3)
    names = [os.path.basename(p) for p in list_checkpoints(str(tmp_path))]
    assert names == ["checkpoint_000003.npz", "checkpoint_000004.npz"]


def test_prune_keep_validation_and_explicit_paths_untouched(tmp_path):
    with pytest.raises(ValueError):
        prune_checkpoints(str(tmp_path), keep=0)
    solver = _solver(tmp_path)
    explicit = str(tmp_path / "pinned.npz")
    solver.checkpoint(explicit)  # explicit paths are never pruned
    for step in range(3):
        save_checkpoint(
            checkpoint_name(str(tmp_path), step),
            solver.velocity, solver.pressure_field, 0.0, step,
            solver.mesh.nnode, solver.mesh.nelem,
        )
    removed = prune_checkpoints(str(tmp_path), keep=2)
    assert [os.path.basename(p) for p in removed] == ["checkpoint_000000.npz"]
    assert os.path.exists(explicit)


# ---------------------------------------------------------------------------
# restart_latest: fallback to the previous generation
# ---------------------------------------------------------------------------

def test_restart_latest_falls_back_past_truncated_newest(tmp_path):
    solver = _solver(tmp_path, checkpoint_every=1)
    solver.run(3, dt=1e-3)
    good, bad = list_checkpoints(str(tmp_path))[-2:]
    raw = open(bad, "rb").read()
    open(bad, "wb").write(raw[: len(raw) // 3])

    fresh = _solver(tmp_path)
    fallbacks = _count("resilience.checkpoint_fallbacks")
    fresh.restart_latest()
    assert _count("resilience.checkpoint_fallbacks") == fallbacks + 1
    # restored bitwise from the surviving previous generation
    state = load_checkpoint(good)
    assert fresh.step_count == state.step
    assert np.array_equal(fresh.velocity, state.velocity)
    assert np.array_equal(fresh.pressure_field, state.pressure)


def test_restart_latest_raises_when_all_generations_corrupt(tmp_path):
    solver = _solver(tmp_path, checkpoint_every=1)
    solver.run(3, dt=1e-3)
    paths = list_checkpoints(str(tmp_path))
    assert len(paths) == 2
    for path in paths:
        open(path, "wb").write(b"corrupt")
    fresh = _solver(tmp_path)
    fallbacks = _count("resilience.checkpoint_fallbacks")
    with pytest.raises(CheckpointError) as err:
        fresh.restart_latest()
    assert "2 candidates" in str(err.value)
    assert _count("resilience.checkpoint_fallbacks") == fallbacks + 2


def test_restart_latest_empty_directory_is_checkpoint_error(tmp_path):
    fresh = _solver(tmp_path)
    with pytest.raises(CheckpointError):
        fresh.restart_latest(str(tmp_path / "void"))


def test_restarted_run_matches_uninterrupted_run_bitwise(tmp_path):
    full = _solver(tmp_path / "full")
    full.run(4, dt=1e-3)

    half = _solver(tmp_path / "half")
    half.run(2, dt=1e-3)
    half.checkpoint()
    resumed = _solver(tmp_path / "half")
    resumed.restart_latest()
    resumed.run(2, dt=1e-3)
    assert np.array_equal(resumed.velocity, full.velocity)
    assert np.array_equal(resumed.pressure_field, full.pressure_field)
