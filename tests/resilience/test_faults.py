"""Fault-plan mechanics: deterministic matching, corruption, pickling."""

import pickle

import numpy as np
import pytest

from repro.obs.metrics import MetricsRegistry, set_registry
from repro.resilience import (
    RECOVERY_COUNTERS,
    RESILIENCE_COUNTERS,
    FaultPlan,
    FaultSpec,
    WorkerCrash,
    fault_seed_from_env,
)


@pytest.fixture(autouse=True)
def _fresh_registry():
    """Isolate the process-wide registry fault accounting writes into."""
    registry = set_registry(MetricsRegistry())
    yield registry
    set_registry(MetricsRegistry())


def test_unknown_kind_rejected():
    with pytest.raises(ValueError, match="unknown fault kind"):
        FaultSpec(site="worker", kind="gremlin")


def test_recovery_counters_are_a_subset():
    assert set(RECOVERY_COUNTERS) < set(RESILIENCE_COUNTERS)
    assert "resilience.faults_injected" not in RECOVERY_COUNTERS


def test_seed_from_env(monkeypatch):
    monkeypatch.delenv("REPRO_FAULT_SEED", raising=False)
    assert fault_seed_from_env(77) == 77
    monkeypatch.setenv("REPRO_FAULT_SEED", "4321")
    assert fault_seed_from_env(77) == 4321


def test_draw_fires_on_indexed_occurrence(_fresh_registry):
    plan = FaultPlan.single("cg", "breakdown", index=2)
    assert plan.draw("cg") is None
    assert plan.draw("cg") is None
    spec = plan.draw("cg")
    assert spec is not None and spec.kind == "breakdown"
    assert plan.draw("cg") is None
    assert len(plan.events) == 1
    assert plan.events[0]["site"] == "cg" and plan.events[0]["index"] == 2
    snap = _fresh_registry.snapshot()
    assert snap["resilience.faults_injected"]["value"] == 1.0


def test_sites_count_independently():
    plan = FaultPlan.single("momentum_rhs", "nan", index=1)
    assert plan.draw("cg") is None  # does not consume momentum_rhs
    assert plan.draw("momentum_rhs") is None
    arr = np.ones(8)
    assert plan.corrupt("momentum_rhs", arr)  # occurrence 1 fires
    assert np.isnan(arr).sum() == 1


def test_corrupt_is_deterministic():
    def corrupted_index(seed):
        plan = FaultPlan.single("assembler", "inf", seed=seed)
        arr = np.zeros((5, 4, 3))
        assert plan.corrupt("assembler", arr)
        return int(np.flatnonzero(~np.isfinite(arr.reshape(-1)))[0])

    assert corrupted_index(1234) == corrupted_index(1234)
    # inf payload, recorded flat index matches the event log
    plan = FaultPlan.single("assembler", "inf", seed=9)
    arr = np.zeros(12)
    plan.corrupt("assembler", arr)
    assert np.isinf(arr).sum() == 1
    assert plan.events[0]["flat_index"] == int(np.flatnonzero(np.isinf(arr))[0])


def test_corrupt_ignores_mismatched_kind_and_empty_arrays():
    plan = FaultPlan.single("cg", "breakdown")
    assert not plan.corrupt("cg", np.ones(4))  # breakdown is not corruption
    plan = FaultPlan.single("assembler", "nan")
    assert not plan.corrupt("assembler", np.empty(0))


def test_worker_fault_is_stateless_on_attempt():
    plan = FaultPlan.single("worker", "crash", rank=1, index=0)
    # attempt 0 of rank 1 fires, every retry (attempt >= 1) succeeds
    assert plan.worker_fault(1, 0) is not None
    assert plan.worker_fault(1, 0) is not None  # stateless: still matches
    assert plan.worker_fault(1, 1) is None
    assert plan.worker_fault(0, 0) is None  # other ranks untouched


def test_execute_worker_fault_crash_raises():
    plan = FaultPlan.single("worker", "crash", rank=0)
    spec = plan.worker_fault(0, 0)
    with pytest.raises(WorkerCrash, match="rank=0"):
        plan.execute_worker_fault(spec, 0, 0)


def test_plan_roundtrips_through_pickle():
    plan = FaultPlan.single("worker", "exit", rank=2, seed=99)
    clone = pickle.loads(pickle.dumps(plan))
    assert clone.seed == 99
    assert clone.worker_fault(2, 0) == plan.worker_fault(2, 0)


def test_event_log_jsonl(tmp_path):
    import json

    plan = FaultPlan.single("cg", "breakdown")
    plan.draw("cg")
    path = plan.write_event_log(str(tmp_path / "faults.jsonl"))
    lines = [json.loads(x) for x in open(path, encoding="utf-8")]
    assert len(lines) == 1
    assert lines[0]["site"] == "cg" and lines[0]["kind"] == "breakdown"
    plan.reset()
    assert plan.events == [] and plan.draw("cg") is not None
