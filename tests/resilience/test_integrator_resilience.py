"""Integrator chaos: rollback on NaN, checkpoint/restart, CFL guards."""

import os

import numpy as np
import pytest

from repro.fem import box_tet_mesh
from repro.fem.mesh import TetMesh
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import Tracer
from repro.physics.fractional_step import (
    FractionalStepSolver,
    IntegrationError,
    cfl_time_step,
    resolve_assembler,
)
from repro.physics.momentum import AssemblyParams
from repro.resilience import (
    CheckpointError,
    FaultPlan,
    fault_seed_from_env,
    latest_checkpoint,
    load_checkpoint,
    save_checkpoint,
)

SEED = fault_seed_from_env()


@pytest.fixture(scope="module")
def mesh():
    return box_tet_mesh(4, 4, 4)


@pytest.fixture(scope="module")
def params():
    return AssemblyParams()


@pytest.fixture(scope="module")
def u0(mesh):
    rng = np.random.default_rng(7)
    return 0.05 * rng.standard_normal((mesh.nnode, 3))


# -- rollback ----------------------------------------------------------------


def test_nan_sweep_rolls_back_and_halves_dt(mesh, params, u0):
    registry = MetricsRegistry()
    tracer = Tracer()
    plan = FaultPlan.single("momentum_rhs", "nan", seed=SEED, index=3)
    solver = FractionalStepSolver(
        mesh, params, fault_plan=plan, metrics=registry, tracer=tracer
    )
    solver.set_velocity(u0)
    dt = cfl_time_step(mesh, solver.velocity, 0.4)
    reports = [solver.advance(dt) for _ in range(3)]
    # the corrupted sweep hit step 2 (sweeps 0-2 are step 1): that step
    # rolled back once and completed at dt/2; the others at full dt.
    assert [r.dt for r in reports] == [dt, dt / 2.0, dt]
    snap = registry.snapshot()
    assert snap["resilience.rollbacks"]["value"] == 1.0
    rollbacks = [s for s in tracer.export() if s["name"] == "Rollback"]
    assert len(rollbacks) == 1
    assert rollbacks[0]["attributes"]["stage"] == "momentum"
    assert np.isfinite(solver.velocity).all()
    assert len(plan.events) == 1


def test_rollback_budget_exhaustion_raises_structured(mesh, params, u0):
    # corrupt every retry's first sweep: occurrence indices 0, 3, 6, ...
    plan = FaultPlan(
        [
            FaultPlan.single("momentum_rhs", "nan", index=3 * i).specs[0]
            for i in range(8)
        ],
        seed=SEED,
    )
    solver = FractionalStepSolver(
        mesh, params, fault_plan=plan, max_dt_halvings=2
    )
    solver.set_velocity(u0)
    dt = cfl_time_step(mesh, solver.velocity, 0.4)
    with pytest.raises(IntegrationError) as err:
        solver.advance(dt)
    assert err.value.stage == "momentum"
    assert err.value.step == 1
    assert err.value.context()["reason"] == "non-finite predictor velocity"
    # failed step committed nothing: state is the pre-step state
    assert solver.step_count == 0 and solver.time == 0.0
    ref = FractionalStepSolver(mesh, params)
    ref.set_velocity(u0)
    assert np.array_equal(solver.velocity, ref.velocity)


def test_blowup_guard_rejects_finite_explosions(mesh, params, u0):
    solver = FractionalStepSolver(mesh, params, blowup_factor=1e-12,
                                  max_dt_halvings=1)
    solver.set_velocity(u0)
    dt = cfl_time_step(mesh, solver.velocity, 0.4)
    with pytest.raises(IntegrationError) as err:
        solver.advance(dt)
    assert "blow-up" in err.value.reason


# -- checkpoint / restart -----------------------------------------------------


def test_periodic_checkpoint_and_bitwise_restart(mesh, params, u0, tmp_path):
    registry = MetricsRegistry()
    a = FractionalStepSolver(
        mesh,
        params,
        checkpoint_every=2,
        checkpoint_dir=str(tmp_path),
        metrics=registry,
    )
    a.set_velocity(u0)
    dt = cfl_time_step(mesh, a.velocity, 0.4)
    for _ in range(4):
        a.advance(dt)
    assert registry.snapshot()["resilience.checkpoints"]["value"] == 2.0
    ckpt = os.path.join(str(tmp_path), "checkpoint_000002.npz")
    assert latest_checkpoint(str(tmp_path)).endswith("checkpoint_000004.npz")

    b = FractionalStepSolver(mesh, params).restart(ckpt)
    assert b.step_count == 2
    for _ in range(2):
        b.advance(dt)
    # the restarted trajectory is bitwise identical to the uninterrupted one
    assert np.array_equal(a.velocity, b.velocity)
    assert np.array_equal(a.pressure_field, b.pressure_field)
    assert b.time == a.time


def test_checkpoint_rejects_wrong_mesh(mesh, params, u0, tmp_path):
    a = FractionalStepSolver(mesh, params)
    a.set_velocity(u0)
    path = str(tmp_path / "ck.npz")
    a.checkpoint(path)
    other = box_tet_mesh(2, 2, 2)
    with pytest.raises(CheckpointError, match="is for a mesh"):
        FractionalStepSolver(other, params).restart(path)


def test_checkpoint_rejects_corrupt_payloads(tmp_path):
    path = str(tmp_path / "bad.npz")
    with pytest.raises(CheckpointError, match="non-finite"):
        save_checkpoint(
            path,
            velocity=np.full((4, 3), np.nan),
            pressure=np.zeros(4),
            time=0.0,
            step=0,
            nnode=4,
            nelem=1,
        )
    np.savez(path, format="something-else")
    with pytest.raises(CheckpointError, match="format"):
        load_checkpoint(path)


def test_checkpoint_without_dir_requires_path(mesh, params):
    solver = FractionalStepSolver(mesh, params)
    with pytest.raises(ValueError, match="checkpoint_dir"):
        solver.checkpoint()


# -- CFL guards ---------------------------------------------------------------


def test_cfl_rejects_empty_mesh():
    empty = TetMesh(
        coords=np.eye(4, 3),
        connectivity=np.zeros((0, 4), dtype=np.int64),
        validate=False,
    )
    with pytest.raises(ValueError, match="no elements"):
        cfl_time_step(empty, np.zeros((4, 3)))


def test_cfl_rejects_zero_volume_element():
    degenerate = TetMesh(
        coords=np.zeros((4, 3)),
        connectivity=np.array([[0, 1, 2, 3]], dtype=np.int64),
        validate=False,
    )
    with pytest.raises(ValueError, match="zero-volume"):
        cfl_time_step(degenerate, np.zeros((4, 3)))


def test_cfl_still_positive_on_healthy_mesh(mesh):
    assert cfl_time_step(mesh, np.zeros((mesh.nnode, 3))) > 0


# -- assembler spec -----------------------------------------------------------


def test_resolve_assembler_resilient_spec(mesh, params):
    from repro.resilience import ResilientAssembler

    asm = resolve_assembler("resilient:RS", mesh, params)
    assert isinstance(asm, ResilientAssembler)
    assert asm.variant == "RS" and asm.mode == "codegen"
    with pytest.raises(ValueError, match="unknown assembler spec"):
        resolve_assembler("quantum", mesh, params)
