"""Degradation ladders: pressure-solver escalation and assembler rungs."""

import numpy as np
import pytest

from repro.fem import box_tet_mesh
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import Tracer
from repro.physics.momentum import AssemblyParams, assemble_momentum_rhs
from repro.physics.pressure import PressureSolver
from repro.resilience import (
    AssemblyDegraded,
    FaultPlan,
    ResilientAssembler,
    fault_seed_from_env,
)
from repro.solvers.cg import SolverError

SEED = fault_seed_from_env()


@pytest.fixture(scope="module")
def mesh():
    return box_tet_mesh(4, 4, 4)


@pytest.fixture(scope="module")
def params():
    return AssemblyParams(body_force=(0.05, -0.1, 0.2))


@pytest.fixture(scope="module")
def velocity(mesh):
    rng = np.random.default_rng(11)
    return 0.05 * rng.standard_normal((mesh.nnode, 3))


# -- pressure ladder ----------------------------------------------------------


def test_clean_solve_serves_from_rung_zero(mesh, velocity, params):
    solver = PressureSolver(mesh, metrics=MetricsRegistry())
    result = solver.solve(velocity, params.density, dt=0.01)
    assert result.converged and result.rung == 0


def test_forced_breakdown_rescued_by_deflation(mesh, velocity, params):
    registry = MetricsRegistry()
    tracer = Tracer()
    clean = PressureSolver(mesh).solve(velocity, params.density, dt=0.01)

    plan = FaultPlan.single("cg", "breakdown", seed=SEED)
    solver = PressureSolver(
        mesh, fault_plan=plan, metrics=registry, tracer=tracer
    )
    rescued = solver.solve(velocity, params.density, dt=0.01)
    assert rescued.converged and rescued.rung == 1
    # the rescue reproduces the clean pressure to solver tolerance
    assert np.abs(rescued.x - clean.x).max() < 1e-6
    assert registry.snapshot()["resilience.solver_escalations"]["value"] == 1.0
    spans = [s for s in tracer.export() if s["name"] == "SolverEscalation"]
    assert len(spans) == 1
    assert spans[0]["attributes"]["from_rung"] == "cg"
    assert spans[0]["attributes"]["to_rung"] == "cg+deflation"
    assert len(plan.events) == 1


def test_exhausted_ladder_raises_structured(mesh, velocity, params):
    registry = MetricsRegistry()
    # a hopeless budget: no rung can converge in a single iteration
    solver = PressureSolver(
        mesh, tol=1e-14, maxiter=1, max_rung=2, metrics=registry
    )
    with pytest.raises(SolverError, match="pressure ladder exhausted") as err:
        solver.solve(velocity, params.density, dt=0.01)
    assert "cg+strong-amg" in str(err.value)
    assert registry.snapshot()["resilience.solver_escalations"]["value"] == 2.0


def test_max_rung_zero_preserves_seed_behaviour(mesh, velocity, params):
    # the seed returned unconverged results silently; max_rung=0 keeps that
    solver = PressureSolver(mesh, tol=1e-14, maxiter=1, max_rung=0)
    result = solver.solve(velocity, params.density, dt=0.01)
    assert not result.converged and result.rung == 0


# -- assembler ladder ---------------------------------------------------------


def test_ladder_validates_and_stays_on_codegen(mesh, velocity, params):
    registry = MetricsRegistry()
    asm = ResilientAssembler(mesh, params, metrics=registry)
    rhs = asm(mesh, velocity, params)
    assert asm.mode == "codegen"
    ref = assemble_momentum_rhs(mesh, velocity, params)
    assert np.allclose(rhs, ref, rtol=1e-8, atol=1e-12)
    snap = registry.snapshot()
    assert snap["resilience.validations"]["value"] == 1.0
    # second sweep: validated rung is trusted, no second reference assembly
    asm(mesh, velocity, params)
    assert registry.snapshot()["resilience.validations"]["value"] == 1.0


def test_corrupted_kernel_degrades_to_compiled(mesh, velocity, params):
    registry = MetricsRegistry()
    tracer = Tracer()
    plan = FaultPlan.single("assembler", "nan", seed=SEED)
    asm = ResilientAssembler(
        mesh, params, fault_plan=plan, metrics=registry, tracer=tracer
    )
    rhs = asm(mesh, velocity, params)
    assert asm.mode == "compiled"
    ref = assemble_momentum_rhs(mesh, velocity, params)
    assert np.allclose(rhs, ref, rtol=1e-8, atol=1e-12)
    snap = registry.snapshot()
    assert snap["resilience.assembler_degradations"]["value"] == 1.0
    spans = [s for s in tracer.export() if s["name"] == "AssemblerDegradation"]
    assert len(spans) == 1
    assert spans[0]["attributes"]["from_mode"] == "codegen"
    assert spans[0]["attributes"]["to_mode"] == "compiled"


def test_all_fast_rungs_corrupt_lands_on_reference(mesh, velocity, params):
    registry = MetricsRegistry()
    plan = FaultPlan(
        [
            FaultPlan.single("assembler", "nan", index=0).specs[0],
            FaultPlan.single("assembler", "inf", index=1).specs[0],
            FaultPlan.single("assembler", "nan", index=2).specs[0],
        ],
        seed=SEED,
    )
    asm = ResilientAssembler(mesh, params, fault_plan=plan, metrics=registry)
    rhs = asm(mesh, velocity, params)
    assert asm.mode == "reference"
    assert np.array_equal(rhs, assemble_momentum_rhs(mesh, velocity, params))
    snap = registry.snapshot()
    assert snap["resilience.assembler_degradations"]["value"] == 3.0


def test_ladder_binding_and_rung_validation(mesh, velocity, params):
    asm = ResilientAssembler(mesh, params)
    other = box_tet_mesh(2, 2, 2)
    with pytest.raises(ValueError, match="bound to the mesh"):
        asm(other, velocity, params)
    with pytest.raises(ValueError, match="bound to its construction params"):
        asm(mesh, velocity, AssemblyParams(viscosity=123.0))
    with pytest.raises(ValueError, match="must end on 'reference'"):
        ResilientAssembler(mesh, params, modes=("compiled",))
    with pytest.raises(ValueError, match="unknown assembler rung"):
        ResilientAssembler(mesh, params, modes=("quantum", "reference"))


def test_assembly_degraded_is_exported():
    assert issubclass(AssemblyDegraded, RuntimeError)
