"""Chaos tests for the supervised multiprocess runner.

Each scenario injects a worker fault (crash / hard exit / hang / slow
rank) and proves the run completes with per-chunk RHS checksums *bitwise
identical* to a fault-free run -- recovery must never change the answer.
"""

import pytest

from repro.fem import box_tet_mesh
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import Tracer
from repro.parallel import MultiprocessRunner, WorkerPolicy
from repro.physics import AssemblyParams
from repro.resilience import FaultPlan, fault_seed_from_env

SEED = fault_seed_from_env()

#: short deadline: the 3x3x3 chunks assemble in milliseconds, and hang /
#: hard-exit detection waits out one full deadline before re-dispatching.
POLICY = WorkerPolicy(task_timeout=5.0, max_retries=2, backoff_base=0.01)


@pytest.fixture(scope="module")
def mesh():
    return box_tet_mesh(3, 3, 3)


@pytest.fixture(scope="module")
def params():
    return AssemblyParams(body_force=(0.05, -0.1, 0.2))


@pytest.fixture(scope="module")
def clean_checksums(mesh, params):
    runner = MultiprocessRunner(mesh, params, repeats=1, policy=POLICY)
    runner.measure([2])
    return runner.chunk_checksums[2]


def _chaos_run(mesh, params, plan, policy=POLICY, tracer=None):
    registry = MetricsRegistry()
    runner = MultiprocessRunner(
        mesh,
        params,
        repeats=1,
        policy=policy,
        fault_plan=plan,
        metrics=registry,
        tracer=tracer,
    )
    points = runner.measure([2])
    counters = {
        name: data["value"]
        for name, data in registry.snapshot().items()
        if name.startswith("resilience.")
    }
    return points, runner.chunk_checksums[2], counters


def test_worker_crash_is_retried_bitwise(mesh, params, clean_checksums):
    plan = FaultPlan.single("worker", "crash", rank=1, index=0, seed=SEED)
    tracer = Tracer()
    points, checksums, counters = _chaos_run(mesh, params, plan, tracer=tracer)
    assert len(points) == 1 and points[0].workers == 2
    assert checksums == clean_checksums  # tuple equality is bitwise
    assert counters["resilience.worker_failures"] == 1.0
    assert counters["resilience.retries"] == 1.0
    assert counters["resilience.respawns"] == 1.0
    assert "resilience.fallbacks" not in counters
    failures = [s for s in tracer.export() if s["name"] == "WorkerFailure"]
    assert len(failures) == 1
    attrs = failures[0]["attributes"]
    assert attrs["rank"] == 1 and attrs["action"] == "retry"
    # the parent logged the injected fault even though the worker died
    assert any(e.get("side") == "parent" for e in plan.events)


def test_worker_hard_exit_detected_by_deadline(mesh, params, clean_checksums):
    plan = FaultPlan.single("worker", "exit", rank=0, index=0, seed=SEED)
    _, checksums, counters = _chaos_run(mesh, params, plan)
    assert checksums == clean_checksums
    assert counters["resilience.worker_failures"] == 1.0
    assert counters["resilience.retries"] == 1.0


def test_worker_hang_detected_by_deadline(mesh, params, clean_checksums):
    plan = FaultPlan.single("worker", "hang", rank=1, index=0, seed=SEED)
    _, checksums, counters = _chaos_run(mesh, params, plan)
    assert checksums == clean_checksums
    assert counters["resilience.worker_failures"] == 1.0
    assert counters["resilience.retries"] == 1.0
    assert counters["resilience.respawns"] == 1.0


def test_slow_rank_completes_without_recovery(mesh, params, clean_checksums):
    plan = FaultPlan.single(
        "worker", "slow", rank=0, index=0, delay=0.2, seed=SEED
    )
    points, checksums, counters = _chaos_run(mesh, params, plan)
    assert checksums == clean_checksums
    # a slow rank is inside the deadline: no failure, no retry
    assert "resilience.worker_failures" not in counters
    assert points[0].wall_seconds >= 0.2


def test_retry_budget_exhausted_falls_back_to_serial(
    mesh, params, clean_checksums
):
    # crash every attempt of rank 1 -- retries can never succeed
    specs = [
        FaultPlan.single("worker", "crash", rank=1, index=i).specs[0]
        for i in range(4)
    ]
    plan = FaultPlan(specs, seed=SEED)
    policy = WorkerPolicy(task_timeout=5.0, max_retries=1, backoff_base=0.01)
    tracer = Tracer()
    _, checksums, counters = _chaos_run(
        mesh, params, plan, policy=policy, tracer=tracer
    )
    # the in-process serial fallback reproduces the chunk bitwise
    assert checksums == clean_checksums
    assert counters["resilience.fallbacks"] == 1.0
    assert counters["resilience.retries"] == 1.0
    assert counters["resilience.worker_failures"] == 2.0
    actions = [
        s["attributes"]["action"]
        for s in tracer.export()
        if s["name"] == "WorkerFailure"
    ]
    assert actions == ["retry", "serial_fallback"]
