"""Chaos acceptance for the campaign server.

Every service-boundary fault site (``server_request``, ``server_cache``,
``server_queue``, ``server_client``, ``server_exec``) plus the in-server
``assembler`` degradation path fires under a fixed ``REPRO_FAULT_SEED``
and the server stays available: healthy requests remain **bitwise
identical** to direct library calls, every refusal carries a typed code,
and poisoned cache entries are detected and recomputed.
"""

import hashlib

import numpy as np
import pytest

from repro.obs.metrics import get_registry
from repro.resilience.faults import FaultPlan
from repro.server import (
    CampaignClient,
    CampaignServer,
    ProtocolError,
    ServerConfig,
)

SEED = 1234  # the CI chaos seed (REPRO_FAULT_SEED default)
MESH = {"nx": 2, "ny": 2, "nz": 2}


def _count(name):
    snap = get_registry().snapshot().get(name)
    return 0 if snap is None else snap["value"]


def _serve(fault_plan, config=None):
    server = CampaignServer(config or ServerConfig(workers=1),
                            fault_plan=fault_plan)
    handle = server.start_in_thread()
    return server, handle, CampaignClient(port=handle.port, timeout=60)


def _direct_sha(velocity_seed):
    from repro.core.unified import UnifiedAssembler
    from repro.fem.meshgen import box_tet_mesh
    from repro.physics.momentum import AssemblyParams

    mesh = box_tet_mesh(2, 2, 2)
    velocity = 0.1 * np.random.default_rng(velocity_seed).standard_normal(
        (mesh.nnode, 3)
    )
    rhs = UnifiedAssembler(mesh, AssemblyParams(), mode="compiled").assemble(
        "RSP", velocity
    )
    return hashlib.sha256(np.ascontiguousarray(rhs).tobytes()).hexdigest()


# ---------------------------------------------------------------------------
# request corruption
# ---------------------------------------------------------------------------

def test_corrupted_request_is_typed_malformed_and_next_request_healthy():
    plan = FaultPlan.single("server_request", "corrupt", seed=SEED, index=0)
    server, handle, client = _serve(plan)
    try:
        before = _count("server.rejections.malformed")
        req = {"kind": "assemble", "mesh": MESH, "mode": "compiled",
               "velocity_seed": 3}
        with pytest.raises(ProtocolError) as err:
            client.run(req)
        assert err.value.code == "malformed"
        assert _count("server.rejections.malformed") == before + 1
        # the fault fired exactly once; the retry goes through untouched
        # and is bitwise identical to the direct library call.
        resp = client.run({**req, "return_field": False})
        assert resp["result"]["sha256"] == _direct_sha(3)
        assert plan.events and plan.events[0]["site"] == "server_request"
    finally:
        handle.stop()


# ---------------------------------------------------------------------------
# cache poisoning
# ---------------------------------------------------------------------------

def test_poisoned_cache_detected_and_recomputed_bitwise_identical():
    # a miss never reaches the corruption hook, so the warm lookup that
    # returns the stored blob is site occurrence 0.
    plan = FaultPlan.single("server_cache", "poison", seed=SEED, index=0)
    server, handle, client = _serve(plan)
    try:
        req = {"kind": "assemble", "mesh": MESH, "mode": "compiled",
               "velocity_seed": 4}
        first = client.run(req)
        poisons = _count("server.cache.poison_detected")
        second = client.run(req)
        assert _count("server.cache.poison_detected") == poisons + 1
        assert second.get("cached") is not True, (
            "poisoned entry must not be served as a cache hit"
        )
        assert second["result"]["sha256"] == first["result"]["sha256"]
        assert second["result"]["sha256"] == _direct_sha(4)
    finally:
        handle.stop()


# ---------------------------------------------------------------------------
# queue stall / slow client: delayed but correct
# ---------------------------------------------------------------------------

def test_queue_stall_is_clamped_and_job_completes():
    plan = FaultPlan.single("server_queue", "slow", seed=SEED,
                            index=0, delay=30.0)
    config = ServerConfig(workers=1, max_stall_s=0.2)
    server, handle, client = _serve(plan, config)
    try:
        resp = client.run({"kind": "assemble", "mesh": MESH,
                           "velocity_seed": 5}, timeout=30)
        assert resp["result"]["sha256"] == _direct_sha(5)
        assert plan.events[0]["kind"] == "slow"
    finally:
        handle.stop()


def test_slow_client_write_is_clamped_and_response_intact():
    plan = FaultPlan.single("server_client", "slow", seed=SEED,
                            index=0, delay=30.0)
    config = ServerConfig(workers=1, slow_client_s=0.2)
    server, handle, client = _serve(plan, config)
    try:
        resp = client.run({"kind": "assemble", "mesh": MESH,
                           "velocity_seed": 6}, timeout=30)
        assert resp["result"]["sha256"] == _direct_sha(6)
    finally:
        handle.stop()


# ---------------------------------------------------------------------------
# executor faults: crash -> typed internal; server stays up
# ---------------------------------------------------------------------------

def test_exec_crash_is_typed_internal_and_server_stays_available():
    plan = FaultPlan.single("server_exec", "crash", seed=SEED, index=0)
    server, handle, client = _serve(plan)
    try:
        with pytest.raises(ProtocolError) as err:
            client.run({"kind": "assemble", "mesh": MESH,
                        "velocity_seed": 7})
        assert err.value.code == "internal"
        # a failed job never lands in the result cache
        resp = client.run({"kind": "assemble", "mesh": MESH,
                           "velocity_seed": 7})
        assert resp.get("cached") is not True
        assert resp["result"]["sha256"] == _direct_sha(7)
    finally:
        handle.stop()


# ---------------------------------------------------------------------------
# in-server degradation: assembler fault -> breaker rung below, job OK
# ---------------------------------------------------------------------------

def test_assembler_fault_degrades_mode_and_still_serves():
    plan = FaultPlan.single("assembler", "nan", seed=SEED, index=0)
    server, handle, client = _serve(plan)
    try:
        degradations = _count("resilience.assembler_degradations")
        resp = client.run({"kind": "assemble", "mesh": MESH,
                           "mode": "codegen", "velocity_seed": 8})
        assert resp["result"]["degraded"] is True
        assert resp["result"]["mode"] != "codegen"
        assert _count("resilience.assembler_degradations") == degradations + 1
        # the degraded rung still produces the exact reference numbers
        assert resp["result"]["sha256"] == _direct_sha(8)
    finally:
        handle.stop()


# ---------------------------------------------------------------------------
# determinism: same seed, same garbled byte
# ---------------------------------------------------------------------------

def test_fault_seed_reproduces_identical_corruption():
    payload = b'{"kind": "assemble", "mesh": {"nx": 2}}'
    runs = []
    for _ in range(2):
        plan = FaultPlan.single("server_request", "corrupt", seed=SEED)
        garbled, fired = plan.corrupt_bytes("server_request", payload)
        assert fired
        runs.append((garbled, plan.events[0]["offset"],
                     plan.events[0]["mask"]))
    assert runs[0] == runs[1]
    other = FaultPlan.single("server_request", "corrupt", seed=SEED + 1)
    garbled, fired = other.corrupt_bytes("server_request", payload)
    assert fired
    assert garbled != runs[0][0]
