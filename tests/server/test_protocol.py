"""Protocol-layer tests: schema round-trips, error taxonomy, HTTP subset.

The acceptance bar: every way a request can be refused has a typed code
from ``ERROR_CODES``, and a valid request survives
``from_dict(to_dict())`` *exactly* -- hypothesis drives both.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.server.protocol import (
    ERROR_CODES,
    CampaignRequest,
    MeshSpec,
    ProtocolError,
    ScenarioSpec,
    canonical_json,
    format_http_response,
    parse_http_request,
    sha256_hex,
)

# ---------------------------------------------------------------------------
# hypothesis strategies for valid requests
# ---------------------------------------------------------------------------

finite = st.floats(
    allow_nan=False, allow_infinity=False, min_value=-1e6, max_value=1e6
)
positive = st.floats(
    allow_nan=False, allow_infinity=False, min_value=1e-9, max_value=1e6
)

mesh_specs = st.builds(
    MeshSpec,
    nx=st.integers(1, 8),
    ny=st.integers(1, 8),
    nz=st.integers(1, 8),
    lengths=st.tuples(positive, positive, positive),
)

scenario_specs = st.builds(
    ScenarioSpec,
    density=positive,
    viscosity=positive,
    body_force=st.tuples(finite, finite, finite),
    vreman_c=st.one_of(
        st.none(),
        st.floats(allow_nan=False, allow_infinity=False,
                  min_value=0.0, max_value=10.0),
    ),
)

requests = st.builds(
    CampaignRequest,
    kind=st.sampled_from(["assemble", "batch", "campaign"]),
    mesh=mesh_specs,
    scenarios=st.lists(scenario_specs, min_size=1, max_size=4).map(tuple),
    variant=st.sampled_from(["RSP", "RS", "B"]),
    mode=st.sampled_from(["codegen", "compiled", "interpreted", "reference"]),
    steps=st.integers(1, 50),
    dt=st.one_of(st.none(), positive),
    velocity_seed=st.integers(-(2**31), 2**31 - 1),
    vector_dim=st.one_of(st.none(), st.integers(1, 4096)),
    tenant=st.text(
        alphabet=st.characters(min_codepoint=33, max_codepoint=126),
        min_size=1, max_size=16,
    ),
    deadline_ms=st.one_of(st.none(), positive),
    return_field=st.booleans(),
)


@settings(max_examples=60, deadline=None)
@given(requests)
def test_request_round_trips_exactly(req):
    """to_dict -> JSON -> from_dict reproduces the request dataclass."""
    wire = json.loads(json.dumps(req.to_dict()))
    back = CampaignRequest.from_dict(wire)
    assert back == req
    # and the content key is stable across the round trip
    assert back.content_key() == req.content_key()


@settings(max_examples=30, deadline=None)
@given(requests, st.text(min_size=1, max_size=16), st.one_of(st.none(), positive))
def test_content_key_ignores_identity_fields(req, tenant, deadline_ms):
    """Same physics from another tenant/deadline coalesces to one key."""
    data = req.to_dict()
    data["tenant"] = "tenant-" + "".join(c for c in tenant if c.isalnum())[:8] or "t"
    data.pop("deadline_ms", None)
    if deadline_ms is not None:
        data["deadline_ms"] = deadline_ms
    try:
        other = CampaignRequest.from_dict(data)
    except ProtocolError:
        return  # degenerate tenant string; identity fields still strict
    assert other.content_key() == req.content_key()


def test_content_key_sensitive_to_physics():
    base = {"kind": "assemble", "mesh": {"nx": 2, "ny": 2, "nz": 2}}
    a = CampaignRequest.from_dict(base)
    b = CampaignRequest.from_dict({**base, "velocity_seed": 1})
    c = CampaignRequest.from_dict({**base, "variant": "B"})
    assert len({a.content_key(), b.content_key(), c.content_key()}) == 3


# ---------------------------------------------------------------------------
# error taxonomy
# ---------------------------------------------------------------------------

def test_error_codes_complete_and_mapped_to_http():
    assert set(ERROR_CODES) == {
        "malformed", "not_found", "quota_exceeded", "shed", "draining",
        "breaker_open", "deadline_exceeded", "internal",
    }
    for code, status in ERROR_CODES.items():
        assert 400 <= status <= 599, code


def test_protocol_error_rejects_untyped_codes():
    with pytest.raises(ValueError):
        ProtocolError("something_new", "boom")


@pytest.mark.parametrize(
    "payload",
    [
        b"not json at all",
        b"[1, 2, 3]",
        b'{"mesh": {"nx": 2, "ny": 2, "nz": 2}}',       # missing kind
        b'{"kind": "assemble"}',                          # missing mesh
        b'{"kind": "explode", "mesh": {"nx": 2, "ny": 2, "nz": 2}}',
        b'{"kind": "assemble", "mesh": {"nx": 0, "ny": 2, "nz": 2}}',
        b'{"kind": "assemble", "mesh": {"nx": 2, "ny": 2, "nz": 2}, "mode": "gpu"}',
        b'{"kind": "assemble", "mesh": {"nx": 2, "ny": 2, "nz": 2}, "scenarios": []}',
        b'{"kind": "assemble", "mesh": {"nx": 2, "ny": 2, "nz": 2}, "surprise": 1}',
        b'{"kind": "campaign", "mesh": {"nx": 2, "ny": 2, "nz": 2}}',  # steps=0
        b'{"kind": "assemble", "mesh": {"nx": 2, "ny": 2, "nz": 2}, "dt": -1.0}',
        b'{"kind": "assemble", "mesh": {"nx": 2, "ny": 2, "nz": 2}, "deadline_ms": 0}',
    ],
)
def test_invalid_requests_raise_typed_malformed(payload):
    with pytest.raises(ProtocolError) as err:
        CampaignRequest.from_json(payload)
    assert err.value.code == "malformed"
    assert err.value.status == 400


def test_oversized_mesh_rejected():
    with pytest.raises(ProtocolError) as err:
        MeshSpec.from_dict({"nx": 100, "ny": 100, "nz": 100})
    assert err.value.code == "malformed"


# ---------------------------------------------------------------------------
# HTTP subset
# ---------------------------------------------------------------------------

def test_parse_http_request_happy_path():
    head = (
        b"POST /submit HTTP/1.1\r\nHost: x\r\nContent-Length: 12\r\n\r\n"
    )
    method, path, headers = parse_http_request(head)
    assert (method, path) == ("POST", "/submit")
    assert headers["content-length"] == "12"


@pytest.mark.parametrize(
    "head",
    [
        b"GARBAGE\r\n\r\n",
        b"GET /x SPDY/9\r\n\r\n",
        b"GET /x HTTP/1.1\r\nBadHeaderNoColon\r\n\r\n",
        b"GET /x HTTP/1.1\r\nContent-Length: banana\r\n\r\n",
        b"GET /x HTTP/1.1\r\nContent-Length: -5\r\n\r\n",
        b"GET /x HTTP/1.1\r\nContent-Length: 999999999999\r\n\r\n",
    ],
)
def test_parse_http_request_garbage_is_typed_malformed(head):
    with pytest.raises(ProtocolError) as err:
        parse_http_request(head)
    assert err.value.code == "malformed"


def test_format_http_response_shape():
    raw = format_http_response(429, {"error": "shed"}, retry_after=1.5)
    head, _, body = raw.partition(b"\r\n\r\n")
    assert head.startswith(b"HTTP/1.1 429 ")
    assert b"Retry-After: 1.500" in head
    assert json.loads(body) == {"error": "shed"}


def test_json_floats_round_trip_bitwise():
    """Python json emits repr-exact floats: the wire is lossless."""
    import struct

    values = [0.1, 1e-17, 2.0 / 3.0, 6.02e23, -1.2345678901234567e-8]
    wire = json.loads(json.dumps(values))
    assert [struct.pack("<d", v) for v in wire] == [
        struct.pack("<d", v) for v in values
    ]


def test_canonical_json_stable():
    a = canonical_json({"b": 1, "a": [1.5, {"y": 2, "x": 3}]})
    b = canonical_json({"a": [1.5, {"x": 3, "y": 2}], "b": 1})
    assert a == b
    assert sha256_hex(a) == sha256_hex(b)
