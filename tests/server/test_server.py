"""Campaign-server integration tests: service boundary vs direct library.

The core guarantee under test: a healthy request served over the socket
is **bitwise identical** to calling the library directly, and every
availability feature (admission, quotas, deadlines, breakers, caches,
coalescing, drain) is observable through typed codes and ``server.*``
metrics.
"""

import hashlib
import threading
import time

import numpy as np
import pytest

from repro.obs.metrics import get_registry
from repro.server import (
    AdmissionController,
    CampaignClient,
    CampaignServer,
    CircuitBreaker,
    ProtocolError,
    ServerConfig,
)
from repro.server.breaker import MODE_LADDER


def _count(name):
    snap = get_registry().snapshot().get(name)
    return 0 if snap is None else snap["value"]


MESH = {"nx": 2, "ny": 2, "nz": 2}


def _serve(config=None, fault_plan=None):
    server = CampaignServer(config or ServerConfig(workers=1),
                            fault_plan=fault_plan)
    handle = server.start_in_thread()
    return server, handle, CampaignClient(port=handle.port, timeout=60)


# ---------------------------------------------------------------------------
# unit: admission
# ---------------------------------------------------------------------------

def test_admission_quota_and_shed_codes():
    adm = AdmissionController(max_queue_depth=2, max_per_tenant=1)
    adm.admit("a")
    with pytest.raises(ProtocolError) as err:
        adm.admit("a")
    assert err.value.code == "quota_exceeded"
    assert err.value.retry_after is not None
    adm.admit("b")  # different tenant still fits
    with pytest.raises(ProtocolError) as err:
        adm.admit("c")
    assert err.value.code == "shed"
    adm.release("a")
    adm.admit("c")  # freed slot readmits
    adm.start_draining()
    with pytest.raises(ProtocolError) as err:
        adm.admit("d")
    assert err.value.code == "draining"


def test_admission_retry_after_tracks_load():
    adm = AdmissionController(max_queue_depth=8, max_per_tenant=8, workers=1)
    empty = adm.retry_after()
    for t in "abc":
        adm.admit(t)
    assert adm.retry_after() > empty
    adm.record_service_time(2.0)
    assert adm.retry_after() > 1.0


# ---------------------------------------------------------------------------
# unit: circuit breaker
# ---------------------------------------------------------------------------

def test_breaker_trip_reroute_and_reset():
    clock = [0.0]
    br = CircuitBreaker(failure_threshold=2, reset_timeout_s=10.0,
                        clock=lambda: clock[0])
    key = ("RSP", "codegen")
    trips = _count("resilience.breaker_trips")
    br.record_failure(key)
    assert br.allow(key)  # one failure below threshold
    br.record_failure(key)
    assert _count("resilience.breaker_trips") == trips + 1
    assert not br.allow(key)
    # routing skips the open rung but keeps the rest of the ladder
    assert br.route("RSP", "codegen") == list(MODE_LADDER[1:])
    # reset timeout -> half-open probe allowed; success closes
    clock[0] = 11.0
    assert br.state(key) == CircuitBreaker.HALF_OPEN
    assert br.allow(key)
    resets = _count("resilience.breaker_resets")
    br.record_success(key)
    assert br.state(key) == CircuitBreaker.CLOSED
    assert _count("resilience.breaker_resets") == resets + 1


def test_breaker_failed_probe_reopens():
    clock = [0.0]
    br = CircuitBreaker(failure_threshold=1, reset_timeout_s=5.0,
                        clock=lambda: clock[0])
    br.record_failure("k")
    clock[0] = 6.0
    assert br.state("k") == CircuitBreaker.HALF_OPEN
    br.record_failure("k")  # probe fails
    assert br.state("k") == CircuitBreaker.OPEN
    clock[0] = 10.9  # fresh timeout from the probe failure
    assert br.state("k") == CircuitBreaker.OPEN


# ---------------------------------------------------------------------------
# integration: happy path, bitwise fidelity, caching
# ---------------------------------------------------------------------------

def test_served_assembly_bitwise_matches_direct_library_call():
    from repro.core.unified import UnifiedAssembler
    from repro.fem.meshgen import box_tet_mesh
    from repro.physics.momentum import AssemblyParams

    server, handle, client = _serve()
    try:
        resp = client.run({
            "kind": "assemble", "mesh": MESH, "variant": "RSP",
            "mode": "compiled", "velocity_seed": 3, "return_field": True,
        })
        result = resp["result"]
        mesh = box_tet_mesh(2, 2, 2)
        velocity = 0.1 * np.random.default_rng(3).standard_normal(
            (mesh.nnode, 3)
        )
        direct = UnifiedAssembler(
            mesh, AssemblyParams(), mode="compiled"
        ).assemble("RSP", velocity)
        direct = np.ascontiguousarray(direct)
        assert result["sha256"] == hashlib.sha256(direct.tobytes()).hexdigest()
        # return_field floats survive the JSON wire bitwise
        assert np.array_equal(np.array(result["field"]), direct)
    finally:
        handle.stop()


def test_second_identical_campaign_is_cached_with_zero_replans():
    server, handle, client = _serve()
    try:
        req = {
            "kind": "campaign", "mesh": MESH, "steps": 2, "dt": 5e-3,
            "scenarios": [{"body_force": [0.0, 0.0, 0.01]},
                          {"body_force": [0.0, 0.0, 0.02]}],
            "mode": "compiled",
        }
        first = client.run(req, timeout=120)
        builds = _count("plan.builds")
        hits = _count("server.cache.result_hits")
        second = client.run(req, timeout=120)
        assert second["result"] == first["result"]
        assert _count("plan.builds") == builds, "cached replay must not re-plan"
        assert _count("server.cache.result_hits") == hits + 1
    finally:
        handle.stop()


def test_warm_mesh_different_physics_reuses_plan():
    """Different velocity_seed misses the result cache but the mesh --
    and its plan/tape/codegen caches -- stay warm: zero plan.builds."""
    server, handle, client = _serve()
    try:
        base = {"kind": "assemble", "mesh": MESH, "mode": "compiled"}
        client.run({**base, "velocity_seed": 0})
        builds = _count("plan.builds")
        misses = _count("server.cache.result_misses")
        client.run({**base, "velocity_seed": 1})
        assert _count("plan.builds") == builds
        assert _count("server.cache.result_misses") > misses
        assert len(server.mesh_cache) == 1
    finally:
        handle.stop()


def test_identical_inflight_submissions_coalesce():
    server, handle, client = _serve()
    try:
        req = {"kind": "campaign", "mesh": MESH, "steps": 60, "dt": 5e-3,
               "mode": "compiled"}
        first = client.submit(req)
        # submit the identical request while the first is queued/running
        second = client.submit(req)
        assert second.get("coalesced") is True
        assert second["job_id"] == first["job_id"]
        done = client.wait(first["job_id"], timeout=120)
        assert done["state"] == "done"
    finally:
        handle.stop()


# ---------------------------------------------------------------------------
# integration: typed rejections over the wire
# ---------------------------------------------------------------------------

def test_unknown_endpoint_and_job_are_typed_not_found():
    server, handle, client = _serve()
    try:
        for path in ("/nope", "/jobs/job-999999"):
            with pytest.raises(ProtocolError) as err:
                client._request("GET", path)
            assert err.value.code == "not_found"
    finally:
        handle.stop()


def test_malformed_submit_counted_and_typed():
    server, handle, client = _serve()
    try:
        before = _count("server.rejections.malformed")
        with pytest.raises(ProtocolError) as err:
            client.submit({"kind": "explode", "mesh": MESH})
        assert err.value.code == "malformed"
        assert _count("server.rejections.malformed") == before + 1
    finally:
        handle.stop()


def test_full_queue_sheds_with_retry_after():
    from repro.resilience.faults import FaultPlan, FaultSpec

    # hold the single slot with an injected slow executor fault
    plan = FaultPlan([FaultSpec(site="server_exec", kind="slow",
                                index=0, delay=10.0)], seed=1)
    config = ServerConfig(workers=1, max_queue_depth=1, max_stall_s=1.0)
    server, handle, client = _serve(config, fault_plan=plan)
    try:
        slow = client.submit({"kind": "assemble", "mesh": MESH,
                              "velocity_seed": 10})
        before = _count("server.rejections.shed")
        with pytest.raises(ProtocolError) as err:
            client.submit({"kind": "assemble", "mesh": MESH,
                           "velocity_seed": 11})
        assert err.value.code == "shed"
        assert err.value.retry_after is not None and err.value.retry_after >= 0
        assert _count("server.rejections.shed") == before + 1
        done = client.wait(slow["job_id"], timeout=60)
        assert done["state"] == "done"  # the held job still completes
    finally:
        handle.stop()


def test_deadline_exceeded_is_typed_and_cancels_cleanly():
    server, handle, client = _serve()
    try:
        sub = client.submit({
            "kind": "campaign", "mesh": MESH, "steps": 1000, "dt": 5e-3,
            "mode": "compiled", "deadline_ms": 400.0, "velocity_seed": 42,
        })
        with pytest.raises(ProtocolError) as err:
            client.wait(sub["job_id"], timeout=120)
        assert err.value.code == "deadline_exceeded"
        status = client.status(sub["job_id"])
        assert status["state"] == "cancelled"
    finally:
        handle.stop()


# ---------------------------------------------------------------------------
# integration: drain
# ---------------------------------------------------------------------------

def test_drain_checkpoints_inflight_campaign_and_rejects_new(tmp_path):
    import os

    config = ServerConfig(workers=1, checkpoint_dir=str(tmp_path))
    server, handle, client = _serve(config)
    try:
        sub = client.submit({
            "kind": "campaign", "mesh": MESH, "steps": 900, "dt": 5e-3,
            "mode": "compiled", "velocity_seed": 7,
        })
        # wait until it is actually running so the drain catches it mid-flight
        deadline = time.monotonic() + 30
        while client.status(sub["job_id"])["state"] == "queued":
            assert time.monotonic() < deadline
            time.sleep(0.01)
        summary = client.drain()
        assert sub["job_id"] in summary["cancelled_running"]
        status = client.status(sub["job_id"])
        assert status["state"] == "checkpointed"
        assert status["checkpoints"], "drained campaign must checkpoint"
        for path in status["checkpoints"]:
            assert os.path.exists(path)
        # draining server refuses new work with a typed code
        with pytest.raises(ProtocolError) as err:
            client.submit({"kind": "assemble", "mesh": MESH,
                           "velocity_seed": 123})
        assert err.value.code == "draining"
    finally:
        handle.stop()


def test_drained_checkpoint_is_restartable(tmp_path):
    from repro.fem.meshgen import box_tet_mesh
    from repro.physics.fractional_step import FractionalStepSolver
    from repro.physics.momentum import AssemblyParams

    config = ServerConfig(workers=1, checkpoint_dir=str(tmp_path))
    server, handle, client = _serve(config)
    try:
        sub = client.submit({
            "kind": "campaign", "mesh": MESH, "steps": 900, "dt": 5e-3,
            "mode": "compiled", "velocity_seed": 8,
        })
        deadline = time.monotonic() + 30
        while client.status(sub["job_id"])["state"] == "queued":
            assert time.monotonic() < deadline
            time.sleep(0.01)
        client.drain()
        status = client.status(sub["job_id"])
        assert status["state"] == "checkpointed"
        solver = FractionalStepSolver(box_tet_mesh(2, 2, 2), AssemblyParams())
        import os

        solver.restart_latest(os.path.dirname(status["checkpoints"][0]))
        assert solver.step_count >= 1
        assert np.isfinite(solver.velocity).all()
    finally:
        handle.stop()


def test_stop_leaves_no_server_threads_or_tasks():
    server, handle, client = _serve()
    try:
        client.run({"kind": "assemble", "mesh": MESH, "velocity_seed": 55})
    finally:
        handle.stop()
    assert not handle.thread.is_alive()
    assert server._worker_tasks == []
    assert server._executor is None
    leftovers = [
        t.name for t in threading.enumerate()
        if t.name.startswith(("campaign-server", "campaign-exec"))
        and t.is_alive()
    ]
    assert leftovers == []
    # double-stop is a no-op
    handle.stop()


# ---------------------------------------------------------------------------
# integration: health/stats
# ---------------------------------------------------------------------------

def test_health_and_stats_endpoints():
    server, handle, client = _serve()
    try:
        health = client.health()
        assert health["status"] == "ok"
        client.run({"kind": "assemble", "mesh": MESH, "velocity_seed": 77})
        stats = client.stats()
        assert stats["jobs"].get("done", 0) >= 1
        assert "server.jobs_completed" in stats["metrics"]
        assert stats["mesh_cache_entries"] >= 1
    finally:
        handle.stop()
    assert client.drain  # handle closed; client object still valid
