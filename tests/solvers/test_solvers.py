"""CG, preconditioners, AMG and deflation."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fem import box_tet_mesh
from repro.physics.pressure import assemble_laplacian
from repro.solvers import (
    SmoothedAggregationAMG,
    SolverError,
    conjugate_gradient,
    deflated_cg,
    ilu0,
    jacobi,
    partition_coarse_space,
    ssor,
)


def _spd(n, seed=0):
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((n, n))
    m = a @ a.T + n * np.eye(n)
    return sp.csr_matrix(m)


@pytest.fixture(scope="module")
def poisson():
    mesh = box_tet_mesh(5, 5, 5)
    return assemble_laplacian(mesh)


# -- CG ------------------------------------------------------------------------


def test_cg_solves_spd():
    a = _spd(40)
    x_true = np.arange(40, dtype=float)
    res = conjugate_gradient(a, a @ x_true, tol=1e-12, maxiter=400)
    assert res.converged
    assert np.allclose(res.x, x_true, atol=1e-8)


def test_cg_zero_rhs():
    res = conjugate_gradient(_spd(10), np.zeros(10))
    assert res.converged and res.iterations == 0
    assert np.allclose(res.x, 0.0)


def test_cg_initial_guess_exact():
    a = _spd(15, seed=1)
    x = np.ones(15)
    res = conjugate_gradient(a, a @ x, x0=x, tol=1e-10)
    assert res.converged and res.iterations == 0


def test_cg_residual_history_monotone_tail():
    a = _spd(30, seed=2)
    res = conjugate_gradient(a, np.ones(30), tol=1e-12)
    assert res.residual_history[-1] < res.residual_history[0]


def test_cg_maxiter_reports_unconverged():
    mesh = box_tet_mesh(4, 4, 4)
    k = assemble_laplacian(mesh) + 1e-8 * sp.eye(65 if False else mesh.nnode)
    res = conjugate_gradient(k, np.random.default_rng(0).standard_normal(mesh.nnode), maxiter=2)
    assert not res.converged
    with pytest.raises(SolverError, match="did not converge"):
        conjugate_gradient(
            k,
            np.random.default_rng(0).standard_normal(mesh.nnode),
            maxiter=2,
            raise_on_fail=True,
        )


def test_cg_detects_indefinite():
    a = sp.diags([1.0, -1.0, 2.0])
    with pytest.raises(SolverError, match="curvature"):
        conjugate_gradient(a, np.array([1.0, 1.0, 1.0]), raise_on_fail=True)


def test_cg_accepts_callable_operator():
    a = _spd(20, seed=3)
    res = conjugate_gradient(lambda v: a @ v, np.ones(20), tol=1e-10)
    assert res.converged


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 200), n=st.integers(5, 30))
def test_cg_property_random_spd(seed, n):
    a = _spd(n, seed=seed)
    rng = np.random.default_rng(seed + 1)
    x = rng.standard_normal(n)
    res = conjugate_gradient(a, a @ x, tol=1e-11, maxiter=10 * n)
    assert res.converged
    assert np.allclose(res.x, x, atol=1e-6)


# -- preconditioners --------------------------------------------------------------


@pytest.mark.parametrize("precond_fn", [jacobi, ssor, ilu0])
def test_preconditioners_accelerate(precond_fn, poisson):
    a = poisson + 1e-6 * sp.eye(poisson.shape[0])  # regularize Neumann
    rng = np.random.default_rng(4)
    b = rng.standard_normal(a.shape[0])
    plain = conjugate_gradient(a, b, tol=1e-8, maxiter=3000)
    pre = conjugate_gradient(
        a, b, tol=1e-8, maxiter=3000, preconditioner=precond_fn(a)
    )
    assert pre.converged
    assert pre.iterations <= plain.iterations


def test_jacobi_rejects_zero_diagonal():
    with pytest.raises(ValueError, match="diagonal"):
        jacobi(sp.csr_matrix(np.array([[0.0, 1.0], [1.0, 2.0]])))


def test_ssor_rejects_bad_omega():
    with pytest.raises(ValueError, match="relaxation"):
        ssor(_spd(5), omega=2.5)


def test_ssor_is_symmetric_operator():
    """CG requires a symmetric preconditioner: check M^{-1} symmetry."""
    a = _spd(12, seed=5)
    apply_m = ssor(a)
    m = np.column_stack([apply_m(e) for e in np.eye(12)])
    assert np.allclose(m, m.T, atol=1e-10)


# -- AMG -----------------------------------------------------------------------


def test_amg_hierarchy_shrinks(poisson):
    amg = SmoothedAggregationAMG(poisson)
    sizes = [l.a.shape[0] for l in amg.levels]
    assert sizes == sorted(sizes, reverse=True)
    assert sizes[-1] < sizes[0]
    assert amg.num_levels >= 2
    assert 1.0 <= amg.operator_complexity() < 3.0


def test_amg_vcycle_reduces_residual(poisson):
    amg = SmoothedAggregationAMG(poisson)
    rng = np.random.default_rng(6)
    b = rng.standard_normal(poisson.shape[0])
    b -= b.mean()  # consistent for Neumann
    x = amg.vcycle(b)
    r0 = np.linalg.norm(b)
    r1 = np.linalg.norm(b - poisson @ x)
    assert r1 < r0


def test_amg_stationary_solve(poisson):
    rng = np.random.default_rng(7)
    p = rng.standard_normal(poisson.shape[0])
    p -= p.mean()
    res = SmoothedAggregationAMG(poisson).solve(
        poisson @ p, tol=1e-8, maxiter=60
    )
    assert res.converged
    err = res.x - res.x.mean() - p
    assert np.abs(err).max() < 1e-5


def test_amg_preconditioned_cg_fast(poisson):
    rng = np.random.default_rng(8)
    p = rng.standard_normal(poisson.shape[0])
    p -= p.mean()
    b = poisson @ p
    amg = SmoothedAggregationAMG(poisson)
    res = conjugate_gradient(
        poisson, b, tol=1e-10, maxiter=100,
        preconditioner=amg.as_preconditioner(),
    )
    plain = conjugate_gradient(poisson, b, tol=1e-10, maxiter=1000)
    assert res.converged
    assert res.iterations < plain.iterations / 2


def test_amg_small_matrix_direct():
    a = _spd(8, seed=9)
    amg = SmoothedAggregationAMG(a, coarse_size=64)
    assert amg.num_levels == 1  # goes straight to the dense solve
    x = amg.vcycle(np.ones(8))
    assert np.allclose(a @ x, np.ones(8), atol=1e-8)


# -- deflation --------------------------------------------------------------------


def test_partition_coarse_space_shape():
    w = partition_coarse_space(np.array([0, 0, 1, 1, 2]))
    assert w.shape == (5, 3)
    assert np.allclose(np.asarray(w.sum(axis=1)).ravel(), 1.0)


def test_deflated_cg_matches_plain(poisson):
    mesh_n = poisson.shape[0]
    rng = np.random.default_rng(10)
    p = rng.standard_normal(mesh_n)
    p -= p.mean()
    b = poisson @ p
    labels = (np.arange(mesh_n) * 4) // mesh_n
    res = deflated_cg(poisson, b, partition_coarse_space(labels), tol=1e-10)
    assert res.converged
    err = res.x - res.x.mean() - p
    assert np.abs(err).max() < 1e-6


def test_deflation_removes_coarse_modes(poisson):
    """Residual orthogonal to the coarse space throughout the solve."""
    n = poisson.shape[0]
    labels = (np.arange(n) * 8) // n
    w = partition_coarse_space(labels)
    rng = np.random.default_rng(11)
    b = rng.standard_normal(n)
    b -= b.mean()
    res = deflated_cg(poisson, b, w, tol=1e-9)
    r = b - poisson @ res.x
    assert np.abs(w.T @ r).max() < 1e-6
